package workload

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"extrareq/internal/apps"
	"extrareq/internal/metrics"
	"extrareq/internal/modeling"
	"extrareq/internal/obs"
	"extrareq/internal/simmpi"
)

// tracedRingApp is ringApp with the observability knobs passed through,
// mirroring what the real proxy apps do via Config.runOptions.
type tracedRingApp struct{ ringApp }

func (tracedRingApp) Run(cfg apps.Config) ([]simmpi.Result, error) {
	opt := &simmpi.Options{Faults: cfg.Faults, Timeout: cfg.Timeout, Tracer: cfg.Tracer, TraceTag: cfg.TraceTag}
	return simmpi.RunOpt(cfg.Procs, opt, func(p *simmpi.Proc) error {
		p.Counters.Alloc(int64(cfg.N) * 8)
		p.AddFlops(int64(cfg.N * cfg.Procs))
		right := (p.Rank() + 1) % p.Size()
		left := (p.Rank() - 1 + p.Size()) % p.Size()
		// 140 communication events per rank, enough that every injected
		// kill (drawn from the runtime's kill window) actually fires.
		for i := 0; i < 70; i++ {
			p.SendRecv(right, []float64{float64(i)}, left)
		}
		return nil
	})
}

// jsonlSummary is the trailer record of one ring in a JSONL trace dump.
type jsonlSummary struct {
	Run       int64  `json:"run"`
	Tag       string `json:"tag"`
	Rank      int    `json:"rank"`
	Kind      string `json:"kind"`
	SentBytes int64  `json:"sent_bytes"`
	RecvBytes int64  `json:"recv_bytes"`
	SentMsgs  int64  `json:"sent_msgs"`
	RecvMsgs  int64  `json:"recv_msgs"`
}

// readSummaries parses a JSONL dump and groups the per-ring summary
// records by run tag.
func readSummaries(t *testing.T, dump []byte) map[string][]jsonlSummary {
	t.Helper()
	out := map[string][]jsonlSummary{}
	sc := bufio.NewScanner(bytes.NewReader(dump))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var r jsonlSummary
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		if r.Kind == string(obs.KindSummary) {
			out[r.Tag] = append(out[r.Tag], r)
		}
	}
	return out
}

// TestObservedCampaignTraceReconcilesWithSamples is the PR's acceptance
// test: a fault-injected resilient campaign run with a tracer and a
// metrics registry must produce (1) a JSONL event stream whose per-rank
// byte totals, summed per successful run, exactly reproduce the campaign's
// counter-derived Table II communication metric, and (2) campaign_*
// counters that agree with the campaign report. Perturbation faults are
// deliberately absent from the plan: they scale counter readings after the
// run, intentionally breaking the trace/counter equality this test pins.
func TestObservedCampaignTraceReconcilesWithSamples(t *testing.T) {
	plan := simmpi.NewFaultPlan(1)
	plan.Kill = 0.5
	reg := obs.NewRegistry()
	tr := obs.NewTracer(0)
	r := &ResilientRunner{
		App:     tracedRingApp{},
		Faults:  plan,
		Retries: 8,
		Sleep:   noSleep,
		Metrics: reg,
		Tracer:  tr,
	}
	c, report, err := r.Run(context.Background(), resilientGrid)
	if err != nil {
		t.Fatalf("campaign failed: %v\n%s", err, report.Render())
	}

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	byTag := readSummaries(t, buf.Bytes())

	// Per surviving configuration: the successful attempt is the last one
	// (outcome.Attempts, 1-based), its run is tagged app/p/n/attempt/rep.
	// The sample's comm metric is mean(sent)+mean(recv) over ranks, which
	// the per-rank trace totals must reproduce exactly.
	commName := metrics.CommBytes.String()
	checked := 0
	for _, out := range report.Outcomes {
		if out.Quarantined {
			continue
		}
		tag := fmt.Sprintf("RingTest/p=%d/n=%d/attempt=%d/rep=0", out.P, out.N, out.Attempts)
		sums, ok := byTag[tag]
		if !ok {
			t.Errorf("no trace summaries for successful run %q", tag)
			continue
		}
		if len(sums) != out.P {
			t.Errorf("%s: %d ring summaries, want %d", tag, len(sums), out.P)
			continue
		}
		var sentTotal, recvTotal int64
		for _, s := range sums {
			sentTotal += s.SentBytes
			recvTotal += s.RecvBytes
		}
		want := float64(sentTotal)/float64(out.P) + float64(recvTotal)/float64(out.P)
		var sample *Sample
		for i := range c.Samples {
			if c.Samples[i].P == out.P && c.Samples[i].N == out.N {
				sample = &c.Samples[i]
			}
		}
		if sample == nil {
			t.Errorf("no sample for p=%d n=%d", out.P, out.N)
			continue
		}
		if got := sample.Values[commName]; got != want {
			t.Errorf("p=%d n=%d: sample %s = %v, traced = %v", out.P, out.N, commName, got, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no configuration was reconciled")
	}

	// The registry's campaign counters must agree with the report.
	snap := reg.Snapshot()
	var attempts, failures int64
	for _, out := range report.Outcomes {
		attempts += int64(out.Attempts)
		failures += int64(len(out.Errors))
	}
	if got := snap.Counters[MetricAttempts]; got != attempts {
		t.Errorf("%s = %d, want %d", MetricAttempts, got, attempts)
	}
	if got := snap.Counters[MetricRetries]; got != failures {
		t.Errorf("%s = %d, want %d", MetricRetries, got, failures)
	}
	if got := snap.Counters[MetricRecovered]; got != int64(report.Recovered) {
		t.Errorf("%s = %d, want %d", MetricRecovered, got, report.Recovered)
	}
	if got := snap.Counters[MetricQuarantined]; got != int64(len(report.Quarantined)) {
		t.Errorf("%s = %d, want %d", MetricQuarantined, got, len(report.Quarantined))
	}
	// One run per attempt (single-repeat grid), every run timed.
	if got := snap.Counters[MetricRuns]; got != attempts {
		t.Errorf("%s = %d, want %d", MetricRuns, got, attempts)
	}
	if got := snap.Histograms[MetricRunSeconds].Total; got != attempts {
		t.Errorf("%s total = %d, want %d", MetricRunSeconds, got, attempts)
	}
	// The plan must actually have bitten (otherwise this test exercises
	// nothing), and the kills must show up as fault events in the stream.
	if failures == 0 {
		t.Fatal("no attempt ever failed — the fault plan never fired")
	}
	if !strings.Contains(buf.String(), `"kind":"fault"`) {
		t.Error("JSONL stream has no fault events despite injected kills")
	}
}

// TestFitAllObservedMetrics: the fit pool reports task, cache-hit, and
// latency metrics; a duplicated task set yields exactly half cache hits.
func TestFitAllObservedMetrics(t *testing.T) {
	var ms []modeling.Measurement
	for _, n := range []float64{32, 64, 128, 256, 512} {
		ms = append(ms, modeling.Measurement{Coords: []float64{n}, Values: []float64{2 * n}})
	}
	task := modeling.FitTask{Key: "k", Params: []string{"n"}, Ms: ms}
	reg := obs.NewRegistry()
	cache := modeling.NewFitCache()
	outs := modeling.FitAllObserved([]modeling.FitTask{task, task, task, task}, 2, cache, reg)
	for _, o := range outs {
		if o.Err != nil {
			t.Fatalf("fit failed: %v", o.Err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters[modeling.MetricFitTasks]; got != 4 {
		t.Errorf("%s = %d, want 4", modeling.MetricFitTasks, got)
	}
	if got := snap.Counters[modeling.MetricFitCacheHits]; got != 3 {
		t.Errorf("%s = %d, want 3 (one miss, three hits)", modeling.MetricFitCacheHits, got)
	}
	if got := snap.Counters[modeling.MetricFitErrors]; got != 0 {
		t.Errorf("%s = %d, want 0", modeling.MetricFitErrors, got)
	}
	if got := snap.Histograms[modeling.MetricFitSeconds].Total; got != 4 {
		t.Errorf("%s total = %d, want 4", modeling.MetricFitSeconds, got)
	}
}

var _ apps.App = tracedRingApp{}
