package workload

import (
	"strings"
	"testing"

	"extrareq/internal/apps"
	"extrareq/internal/pmnf"
)

func TestRunWithPathsAttributesComm(t *testing.T) {
	c, err := RunWithPaths(apps.NewMILC(), smallGrid)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Samples) != 25 {
		t.Fatalf("got %d samples", len(c.Samples))
	}
	paths := c.Paths()
	var haveAllreduce, haveHalo bool
	for _, p := range paths {
		if strings.Contains(p, "cg/MPI_Allreduce") {
			haveAllreduce = true
		}
		if strings.Contains(p, "halo") {
			haveHalo = true
		}
	}
	if !haveAllreduce || !haveHalo {
		t.Fatalf("missing expected call paths in %v", paths)
	}
	// Per-path volumes must sum to the whole-program comm volume.
	for _, s := range c.Samples {
		var sum float64
		for _, v := range s.CommByPath() {
			sum += v
		}
		total := s.Values["bytes_sent_recv"]
		if total <= 0 {
			t.Fatalf("sample p=%d n=%d has no comm", s.P, s.N)
		}
		if diff := (sum - total) / total; diff > 0.01 || diff < -0.01 {
			t.Errorf("p=%d n=%d: path sum %g != total %g", s.P, s.N, sum, total)
		}
	}
}

func TestFitCommPathAllreduceShape(t *testing.T) {
	c, err := RunWithPaths(apps.NewMILC(), Grid{
		Procs: []int{2, 4, 8, 16, 32},
		Ns:    []int{128, 256, 512, 1024, 2048},
		Seed:  7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var allreducePath string
	for _, p := range c.Paths() {
		if strings.HasSuffix(p, "cg/MPI_Allreduce") {
			allreducePath = p
		}
	}
	if allreducePath == "" {
		t.Fatal("allreduce path not found")
	}
	info, err := FitCommPath(c, allreducePath, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The CG allreduce volume is ∝ 2·log2(p), independent of n.
	fp, ok := info.Model.DominantFactor("p")
	if !ok {
		t.Fatalf("allreduce path model %s has no p growth", info.Model)
	}
	if poly, lg := fp.GrowthKey(); poly > 0.2 || lg == 0 {
		t.Errorf("allreduce path p factor %+v, want logarithmic (model %s)", fp, info.Model)
	}
	if _, ok := info.Model.DominantFactor("n"); ok {
		// A small n-dependence could sneak in via jittered iteration
		// counts; it must not be polynomial.
		fn, _ := info.Model.DominantFactor("n")
		if poly, _ := fn.GrowthKey(); poly > 0.2 {
			t.Errorf("allreduce path has polynomial n growth: %s", info.Model)
		}
	}
}

func TestCommHotSpots(t *testing.T) {
	c, err := RunWithPaths(apps.NewMILC(), smallGrid)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := CommHotSpots(c, 1<<20, 1<<14, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(hot) == 0 {
		t.Fatal("no hot spots found")
	}
	for i := 1; i < len(hot); i++ {
		if hot[i].Predicted > hot[i-1].Predicted {
			t.Fatalf("hot spots not sorted: %v", hot)
		}
	}
	// MILC's n-proportional halo dominates at large n (the paper's 10^9·n
	// comm term).
	if !strings.Contains(hot[0].Path, "halo") {
		t.Errorf("top hot spot = %s, want the halo exchange", hot[0].Path)
	}
	for _, h := range hot {
		if h.Model == nil {
			t.Errorf("hot spot %s missing model", h.Path)
		}
	}
	_ = pmnf.Allreduce
}

func TestMetricNames(t *testing.T) {
	names := MetricNames()
	if len(names) != 5 {
		t.Fatalf("got %d metric names", len(names))
	}
	for _, n := range names {
		if n == "" {
			t.Error("empty metric name")
		}
	}
}

func TestRunWithPathsValidation(t *testing.T) {
	if _, err := RunWithPaths(apps.NewKripke(), Grid{}); err == nil {
		t.Fatal("empty grid accepted")
	}
}
