// Package workload drives measurement campaigns: it runs a proxy
// application over a grid of process counts and problem sizes (the paper's
// rule of thumb: at least five configurations per parameter, §II-C),
// extracts the per-process requirement metrics of Table I from the
// counters, profiles, and locality probes, and converts the results into
// the measurement sets the model generator consumes.
package workload

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"extrareq/internal/apps"
	"extrareq/internal/counters"
	"extrareq/internal/locality"
	"extrareq/internal/metrics"
	"extrareq/internal/modeling"
	"extrareq/internal/simmpi"
)

// Grid is a measurement campaign specification.
type Grid struct {
	Procs []int `json:"procs"`
	Ns    []int `json:"ns"`
	Seed  int64 `json:"seed"`
	// Repeats is the number of runs per configuration (each with a derived
	// seed). The paper needs only one run per configuration because the
	// counters are highly reproducible (§II-B); repeats exercise the
	// model generator's aggregation over repeated observations. 0 means 1.
	Repeats int `json:"repeats,omitempty"`
}

// FivePointRule is the paper's rule of thumb (§II-C): at least five
// distinct values per model parameter, or the generator risks an
// under-constrained model.
const FivePointRule = 5

// AxisWarning reports a parameter axis that violates the five-point rule.
type AxisWarning struct {
	// Param is the model parameter ("p" or "n").
	Param string `json:"param"`
	// Points is the number of distinct values available on the axis.
	Points int `json:"points"`
	// Required is the rule-of-thumb minimum (FivePointRule).
	Required int `json:"required"`
}

func (w AxisWarning) String() string {
	return fmt.Sprintf("parameter %s has %d distinct points, below the paper's %d-point rule (§II-C): models in %s may be under-constrained",
		w.Param, w.Points, w.Required, w.Param)
}

// distinctCount returns the number of distinct values on an axis.
func distinctCount(axis []int) int {
	seen := map[int]bool{}
	for _, v := range axis {
		seen[v] = true
	}
	return len(seen)
}

// Validate rejects grids the pipeline cannot measure at all: an empty axis,
// or a non-positive process count or problem size. The paper's softer
// five-configurations rule of thumb is reported by FivePointWarnings — a
// sparse grid still measures, it just yields weakly constrained models.
func (g Grid) Validate() error {
	if len(g.Procs) == 0 {
		return fmt.Errorf("workload: grid has no process counts (Procs axis is empty; want at least one p >= 1)")
	}
	if len(g.Ns) == 0 {
		return fmt.Errorf("workload: grid has no problem sizes (Ns axis is empty; want at least one n >= 1)")
	}
	for _, p := range g.Procs {
		if p < 1 {
			return fmt.Errorf("workload: invalid process count %d on the Procs axis (every p must be >= 1)", p)
		}
	}
	for _, n := range g.Ns {
		if n < 1 {
			return fmt.Errorf("workload: invalid problem size %d on the Ns axis (every n must be >= 1)", n)
		}
	}
	return nil
}

// FivePointWarnings checks the paper's five-configurations rule of thumb
// (§II-C): one warning per parameter axis with fewer than FivePointRule
// distinct values. An empty slice means the grid satisfies the rule.
func (g Grid) FivePointWarnings() []AxisWarning {
	var out []AxisWarning
	if c := distinctCount(g.Procs); c < FivePointRule {
		out = append(out, AxisWarning{Param: "p", Points: c, Required: FivePointRule})
	}
	if c := distinctCount(g.Ns); c < FivePointRule {
		out = append(out, AxisWarning{Param: "n", Points: c, Required: FivePointRule})
	}
	return out
}

// DefaultProcs is the default process-count axis.
var DefaultProcs = []int{4, 8, 16, 32, 64}

// DefaultGrid returns the per-app measurement grid used by the repro
// harness. Problem-size ranges differ per app so that every proxy runs in
// its characteristic regime.
func DefaultGrid(app string) Grid {
	ns := map[string][]int{
		"Kripke":  {512, 1024, 2048, 4096, 8192},
		"LULESH":  {256, 512, 1024, 2048, 4096},
		"MILC":    {512, 1024, 2048, 4096, 8192},
		"Relearn": {1024, 2048, 4096, 8192, 16384},
		"icoFoam": {256, 512, 1024, 2048, 4096},
	}
	n, ok := ns[app]
	if !ok {
		n = []int{256, 512, 1024, 2048, 4096}
	}
	procs := append([]int(nil), DefaultProcs...)
	if app == "icoFoam" {
		// icoFoam's p^0.5 requirement growth needs a wider process range to
		// be distinguishable from logarithmic growth.
		procs = []int{8, 16, 32, 64, 128}
	}
	return Grid{Procs: procs, Ns: n, Seed: 42}
}

// Sample is the per-process metric vector measured at one configuration.
type Sample struct {
	P      int                `json:"p"`
	N      int                `json:"n"`
	Values map[string]float64 `json:"values"` // metric name -> value (mean over runs)
	// Runs holds the individual per-run values when the grid requested
	// repeats; empty for single-run campaigns.
	Runs []map[string]float64 `json:"runs,omitempty"`
}

// Campaign is the result of measuring one application over a grid.
type Campaign struct {
	App     string   `json:"app"`
	Grid    Grid     `json:"grid"`
	Samples []Sample `json:"samples"`
}

// probeCap bounds retained locality samples per instruction group.
const probeCap = 1 << 14

// Run measures the app over the grid: one simulated MPI run per (p, n)
// configuration for the counter metrics, plus one single-process locality
// probe per n (stack distance is measured per process; the paper measured
// it on a separate system for all apps, §III). The (p, n) configurations
// are measured concurrently across all cores; the sample order is
// p-major/n-minor regardless of scheduling.
func Run(app apps.App, grid Grid) (*Campaign, error) {
	return RunParallel(app, grid, 0)
}

// RunParallel is Run with an explicit worker count (<= 0 selects
// GOMAXPROCS). Proxy applications are stateless per run and every
// simulated configuration is seeded deterministically, so concurrent
// measurement yields the same campaign as the serial loop.
func RunParallel(app apps.App, grid Grid, workers int) (*Campaign, error) {
	if err := grid.Validate(); err != nil {
		return nil, err
	}
	c := &Campaign{App: app.Name(), Grid: grid}

	// Locality probes, one per problem size.
	stackByN := map[int]float64{}
	for _, n := range grid.Ns {
		an := locality.NewAnalyzer()
		an.MaxSamplesPerGroup = probeCap
		app.LocalityProbe(n, an)
		groups := locality.FilterGroups(an.Groups(), locality.DefaultMinSamples)
		stackByN[n] = locality.MedianStackDistance(groups)
	}

	repeats := grid.Repeats
	if repeats < 1 {
		repeats = 1
	}
	type config struct{ p, n int }
	var configs []config
	for _, p := range grid.Procs {
		for _, n := range grid.Ns {
			configs = append(configs, config{p, n})
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(configs) {
		workers = len(configs)
	}
	samples := make([]Sample, len(configs))
	errs := make([]error, len(configs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(configs) {
					return
				}
				p, n := configs[i].p, configs[i].n
				s := Sample{P: p, N: n, Values: map[string]float64{}}
				for r := 0; r < repeats; r++ {
					// Runs differ by seed, emulating run-to-run variation.
					results, err := app.Run(apps.Config{Procs: p, N: n, Seed: grid.Seed + int64(r)*1_000_003})
					if err != nil {
						errs[i] = fmt.Errorf("workload: %s at p=%d n=%d: %w", app.Name(), p, n, err)
						return
					}
					vals := extract(results, stackByN[n])
					if repeats > 1 {
						s.Runs = append(s.Runs, vals)
					}
					for k, v := range vals {
						s.Values[k] += v / float64(repeats)
					}
				}
				samples[i] = s
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	c.Samples = samples
	return c, nil
}

// extract converts per-rank results into the Table I per-process metrics
// (mean over ranks; the matching hardware grows with the process count, so
// per-process means are the comparable quantity).
func extract(results []simmpi.Result, stackDistance float64) map[string]float64 {
	mean := func(e counters.Event) float64 {
		var s float64
		for _, r := range results {
			s += float64(r.Counters.Value(e))
		}
		return s / float64(len(results))
	}
	return map[string]float64{
		metrics.MemoryBytes.String():   mean(counters.RSS),
		metrics.Flops.String():         mean(counters.FLOP),
		metrics.CommBytes.String():     mean(counters.BytesSent) + mean(counters.BytesRecv),
		metrics.LoadsStores.String():   mean(counters.Load) + mean(counters.Store),
		metrics.StackDistance.String(): stackDistance,
		// Beyond Table I: per-process message counts, for latency-aware
		// analyses (model via MeasurementsByName).
		"msgs_sent_recv": mean(counters.MsgsSent) + mean(counters.MsgsRecv),
	}
}

// MeasurementsByName converts an arbitrary sample value (including
// extension values such as "msgs_sent_recv") into model-generator input.
func (c *Campaign) MeasurementsByName(name string) []modeling.Measurement {
	var out []modeling.Measurement
	for _, s := range c.Samples {
		v, ok := s.Values[name]
		if !ok {
			continue
		}
		out = append(out, modeling.Measurement{
			Coords: []float64{float64(s.P), float64(s.N)},
			Values: []float64{v},
		})
	}
	return out
}

// Measurements converts the campaign into model-generator input for one
// metric. When a sample carries repeated runs, all run values are passed
// through, so the generator's aggregation (mean/median) applies.
func (c *Campaign) Measurements(m metrics.Metric) []modeling.Measurement {
	var out []modeling.Measurement
	for _, s := range c.Samples {
		var values []float64
		if len(s.Runs) > 0 {
			for _, run := range s.Runs {
				if v, ok := run[m.String()]; ok {
					values = append(values, v)
				}
			}
		} else if v, ok := s.Values[m.String()]; ok {
			values = []float64{v}
		}
		if len(values) == 0 {
			continue
		}
		out = append(out, modeling.Measurement{
			Coords: []float64{float64(s.P), float64(s.N)},
			Values: values,
		})
	}
	return out
}

// Save writes the campaign as JSON to path.
func (c *Campaign) Save(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a campaign written by Save.
func Load(path string) (*Campaign, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Campaign
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("workload: parsing %s: %w", path, err)
	}
	return &c, nil
}
