package workload

import (
	"context"
	"sort"
	"sync"
	"testing"

	"extrareq/internal/apps"
)

// Progress must fire once per configuration with unique done values that
// cover 1..total, regardless of worker interleaving.
func TestResilientRunnerProgress(t *testing.T) {
	app, ok := apps.ByName("Kripke")
	if !ok {
		t.Fatal("app Kripke not registered")
	}
	grid := Grid{Procs: []int{2, 4}, Ns: []int{64, 128, 256}, Seed: 3}
	var mu sync.Mutex
	var dones []int
	var totals []int
	r := &ResilientRunner{
		App:     app,
		Workers: 3,
		Progress: func(done, total int) {
			mu.Lock()
			dones = append(dones, done)
			totals = append(totals, total)
			mu.Unlock()
		},
	}
	if _, _, err := r.Run(context.Background(), grid); err != nil {
		t.Fatal(err)
	}
	wantTotal := len(grid.Procs) * len(grid.Ns)
	if len(dones) != wantTotal {
		t.Fatalf("got %d progress callbacks, want %d", len(dones), wantTotal)
	}
	sort.Ints(dones)
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("done values %v do not cover 1..%d", dones, wantTotal)
		}
	}
	for _, tot := range totals {
		if tot != wantTotal {
			t.Fatalf("total %d reported, want %d", tot, wantTotal)
		}
	}
}
