package workload

import (
	"strings"
	"testing"

	"extrareq/internal/apps"
)

func TestFindScalingBugsKripkeLoads(t *testing.T) {
	// The Kripke sweep's per-zone schedule scan is the paper's flagged
	// n·p loads term; the bug finder must locate it at the sweep path.
	c, err := RunWithPaths(apps.NewKripke(), DefaultGrid("Kripke"))
	if err != nil {
		t.Fatal(err)
	}
	bugs, err := FindScalingBugs(c, "loads", 1<<20, 1<<14, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(bugs) == 0 {
		t.Fatal("no scaling bugs found; expected the sweep's n·p loads")
	}
	top := bugs[0]
	if !strings.Contains(top.Path, "sweep") {
		t.Errorf("top bug at %s, want the sweep path", top.Path)
	}
	if poly, _ := top.PGrowth.GrowthKey(); poly < 0.5 {
		t.Errorf("top bug p-growth %+v, want ~linear", top.PGrowth)
	}
	if top.Severity <= 1 {
		t.Errorf("severity = %g, want > 1", top.Severity)
	}
	if line := FormatBug(top); !strings.Contains(line, "loads") {
		t.Errorf("FormatBug output: %s", line)
	}
}

func TestFindScalingBugsCleanMetric(t *testing.T) {
	// Kripke's FLOPs are p-independent: no computation scaling bugs.
	c, err := RunWithPaths(apps.NewKripke(), smallGrid)
	if err != nil {
		t.Fatal(err)
	}
	bugs, err := FindScalingBugs(c, "flop", 1<<20, 1<<14, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(bugs) != 0 {
		for _, b := range bugs {
			t.Errorf("unexpected flop bug: %s", FormatBug(b))
		}
	}
}

func TestFindScalingBugsIcoFoamFlops(t *testing.T) {
	// icoFoam's pressure CG couples p into computation (iterations grow
	// with sqrt(n·p)) — the finder must flag the CG path.
	c, err := RunWithPaths(apps.NewIcoFoam(), DefaultGrid("icoFoam"))
	if err != nil {
		t.Fatal(err)
	}
	bugs, err := FindScalingBugs(c, "flop", 1<<20, 1<<14, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(bugs) == 0 {
		t.Fatal("expected a flop scaling bug in icoFoam")
	}
	if !strings.Contains(bugs[0].Path, "pressure_cg") {
		t.Errorf("top bug at %s, want pressure_cg", bugs[0].Path)
	}
}

func TestFindScalingBugsEmptyCampaign(t *testing.T) {
	if _, err := FindScalingBugs(&PathCampaign{}, "flop", 10, 10, nil); err == nil {
		t.Fatal("empty campaign accepted")
	}
}

func TestIsMPIPath(t *testing.T) {
	cases := map[string]bool{
		"main/cg/MPI_Allreduce":  true,
		"main/halo/MPI_Sendrecv": true,
		"main/sweep":             false,
		"main/MPI_less/kernel":   false,
	}
	for path, want := range cases {
		if got := IsMPIPath(path); got != want {
			t.Errorf("IsMPIPath(%q) = %v, want %v", path, got, want)
		}
	}
}
