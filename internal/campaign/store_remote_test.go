package campaign

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"extrareq/internal/obs"
	"extrareq/internal/workload"
)

// pointsServer is a minimal in-memory peer speaking the /v1/points
// protocol, with injectable failures so tests can exercise the client's
// retry, timeout, and breaker machinery without a real reqserve.
type pointsServer struct {
	mu      sync.Mutex
	entries map[string][]byte
	gets    int
	puts    int
	// failNext forces the next N requests to answer failStatus (or hang
	// for failDelay when failStatus is 0). failNext < 0 fails forever.
	failNext   int
	failStatus int
	failDelay  time.Duration
}

func (ps *pointsServer) failing(n, status int) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.failNext, ps.failStatus = n, status
}

func (ps *pointsServer) counts() (gets, puts int) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.gets, ps.puts
}

func (ps *pointsServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ps.mu.Lock()
	key := r.PathValue("key")
	switch r.Method {
	case http.MethodGet:
		ps.gets++
	case http.MethodPut:
		ps.puts++
	}
	fail := ps.failNext != 0
	status, delay := ps.failStatus, ps.failDelay
	if ps.failNext > 0 {
		ps.failNext--
	}
	ps.mu.Unlock()
	if fail {
		if status == 0 {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
			}
			return
		}
		http.Error(w, "injected failure", status)
		return
	}
	switch r.Method {
	case http.MethodGet:
		ps.mu.Lock()
		data, ok := ps.entries[key]
		ps.mu.Unlock()
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(data)
	case http.MethodPut:
		body := make([]byte, 0, 1024)
		buf := make([]byte, 4096)
		for {
			n, err := r.Body.Read(buf)
			body = append(body, buf[:n]...)
			if err != nil {
				break
			}
		}
		ps.mu.Lock()
		if ps.entries == nil {
			ps.entries = map[string][]byte{}
		}
		ps.entries[key] = body
		ps.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	}
}

// newPointsServer starts the fake peer and a RemoteStore against it.
func newPointsServer(t testing.TB, o RemoteOptions) (*pointsServer, *RemoteStore) {
	t.Helper()
	ps := &pointsServer{entries: map[string][]byte{}}
	mux := http.NewServeMux()
	mux.Handle("GET /v1/points/{key}", ps)
	mux.Handle("PUT /v1/points/{key}", ps)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	if o.Client == nil {
		o.Client = ts.Client()
	}
	if o.Logf == nil {
		o.Logf = t.Logf
	}
	if o.sleep == nil {
		o.sleep = func(time.Duration) {} // no real backoff waits in tests
	}
	rs, err := NewRemoteStore(ts.URL, o)
	if err != nil {
		t.Fatal(err)
	}
	return ps, rs
}

// testPointEntry builds a valid point entry and its key.
func testPointEntry(t testing.TB) (Key, []byte) {
	t.Helper()
	req := Request{App: testApp(t), Grid: testGrid()}
	key := ComputePointKey(req, 2, 64)
	data, err := encodePoint(key, req.App.Name(), workload.Sample{P: 2, N: 64, Values: map[string]float64{"t": 1}}, workload.ConfigOutcome{})
	if err != nil {
		t.Fatal(err)
	}
	return key, data
}

func TestNewRemoteStoreRejectsBadURL(t *testing.T) {
	for _, bad := range []string{"", "ftp://host", "host:8080", "/just/a/path", "http://"} {
		if _, err := NewRemoteStore(bad, RemoteOptions{}); err == nil {
			t.Errorf("NewRemoteStore(%q) accepted a non-http(s) URL", bad)
		}
	}
	if _, err := NewRemoteStore("http://localhost:9", RemoteOptions{}); err != nil {
		t.Errorf("NewRemoteStore rejected a well-formed URL: %v", err)
	}
}

func TestRemoteStoreRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	ps, rs := newPointsServer(t, RemoteOptions{Metrics: reg})
	key, data := testPointEntry(t)
	ctx := context.Background()

	if _, ok := rs.Load(ctx, key); ok {
		t.Fatal("Load hit before anything was stored")
	}
	if err := rs.Store(ctx, key, data); err != nil {
		t.Fatalf("Store: %v", err)
	}
	// A fresh client (no known-keys memory) reads the bytes back.
	_, rs2 := newPointsServer(t, RemoteOptions{})
	rs2.base = rs.base
	rs2.client = rs.client
	got, ok := rs2.Load(ctx, key)
	if !ok {
		t.Fatal("Load miss after Store")
	}
	if string(got) != string(data) {
		t.Error("Load returned different bytes than Store sent")
	}
	snap := reg.Snapshot()
	if snap.Counters[obs.MetricStoreRemoteMiss] != 1 {
		t.Errorf("%s = %d, want 1", obs.MetricStoreRemoteMiss, snap.Counters[obs.MetricStoreRemoteMiss])
	}
	if snap.Counters[obs.MetricStoreRemoteError] != 0 {
		t.Errorf("%s = %d, want 0", obs.MetricStoreRemoteError, snap.Counters[obs.MetricStoreRemoteError])
	}
	if _, puts := ps.counts(); puts != 1 {
		t.Errorf("server saw %d PUTs, want 1", puts)
	}
}

// A successful PUT (or GET) marks the key known; re-storing the same
// entry — every overlapping campaign does this — skips the wire entirely.
func TestRemoteStorePutDedup(t *testing.T) {
	ps, rs := newPointsServer(t, RemoteOptions{})
	key, data := testPointEntry(t)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := rs.Store(ctx, key, data); err != nil {
			t.Fatal(err)
		}
	}
	if _, puts := ps.counts(); puts != 1 {
		t.Errorf("server saw %d PUTs for one key, want 1 (dedup)", puts)
	}
	// A Load hit also marks the key known on a fresh store.
	_, rs2 := newPointsServer(t, RemoteOptions{})
	rs2.base, rs2.client = rs.base, rs.client
	if _, ok := rs2.Load(ctx, key); !ok {
		t.Fatal("Load miss after PUT")
	}
	if err := rs2.Store(ctx, key, data); err != nil {
		t.Fatal(err)
	}
	if _, puts := ps.counts(); puts != 1 {
		t.Errorf("server saw %d PUTs after a confirming GET, want still 1", puts)
	}
}

// Transient 5xx responses are retried with backoff; the operation
// succeeds once the remote recovers within the retry budget.
func TestRemoteStoreRetriesTransient5xx(t *testing.T) {
	var slept []time.Duration
	ps, rs := newPointsServer(t, RemoteOptions{
		Retries: 2,
		Backoff: 10 * time.Millisecond,
		sleep:   func(d time.Duration) { slept = append(slept, d) },
	})
	key, data := testPointEntry(t)
	ps.entries[key.String()] = data
	ps.failing(2, http.StatusInternalServerError)

	if _, ok := rs.Load(context.Background(), key); !ok {
		t.Fatal("Load failed despite recovery within the retry budget")
	}
	if gets, _ := ps.counts(); gets != 3 {
		t.Errorf("server saw %d GETs, want 3 (two 500s + success)", gets)
	}
	if len(slept) != 2 || slept[0] != 10*time.Millisecond || slept[1] != 20*time.Millisecond {
		t.Errorf("backoff sleeps = %v, want [10ms 20ms] (doubling)", slept)
	}
}

// A remote that stays down exhausts the retry budget: loads degrade to
// misses, stores are dropped, and neither ever surfaces an error.
func TestRemoteStoreDegradesWhenRemoteStaysDown(t *testing.T) {
	reg := obs.NewRegistry()
	ps, rs := newPointsServer(t, RemoteOptions{Retries: 1, Metrics: reg})
	ps.failing(-1, http.StatusInternalServerError)
	key, data := testPointEntry(t)
	ctx := context.Background()

	if _, ok := rs.Load(ctx, key); ok {
		t.Fatal("Load reported a hit from a dead remote")
	}
	if err := rs.Store(ctx, key, data); err != nil {
		t.Fatalf("Store surfaced a remote failure: %v (must degrade, not latch writes off)", err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[obs.MetricStoreRemoteError]; got != 2 {
		t.Errorf("%s = %d, want 2 (one failed load, one failed store)", obs.MetricStoreRemoteError, got)
	}
	if got := snap.Counters[obs.MetricStoreRemoteDropped]; got != 1 {
		t.Errorf("%s = %d, want 1", obs.MetricStoreRemoteDropped, got)
	}
	if gets, puts := ps.counts(); gets != 2 || puts != 2 {
		t.Errorf("server saw %d GETs / %d PUTs, want 2 / 2 (1 + 1 retry each)", gets, puts)
	}
}

// 404 is an answer, not a failure: no retries, no error count.
func TestRemoteStore404IsMissNotError(t *testing.T) {
	reg := obs.NewRegistry()
	ps, rs := newPointsServer(t, RemoteOptions{Metrics: reg})
	key, _ := testPointEntry(t)
	if _, ok := rs.Load(context.Background(), key); ok {
		t.Fatal("Load hit on an empty remote")
	}
	if gets, _ := ps.counts(); gets != 1 {
		t.Errorf("server saw %d GETs, want 1 (404 must not be retried)", gets)
	}
	snap := reg.Snapshot()
	if snap.Counters[obs.MetricStoreRemoteError] != 0 {
		t.Error("404 counted as a remote error")
	}
	if snap.Counters[obs.MetricStoreRemoteMiss] != 1 {
		t.Error("404 not counted as a miss")
	}
}

// The per-attempt timeout bounds a hung remote; the caller gets a miss
// within its deadline instead of stalling a campaign.
func TestRemoteStoreTimeout(t *testing.T) {
	reg := obs.NewRegistry()
	ps, rs := newPointsServer(t, RemoteOptions{
		Timeout: 20 * time.Millisecond,
		Retries: -1,
		Metrics: reg,
	})
	ps.mu.Lock()
	ps.failNext, ps.failStatus, ps.failDelay = -1, 0, 10*time.Second
	ps.mu.Unlock()
	key, _ := testPointEntry(t)

	start := time.Now()
	if _, ok := rs.Load(context.Background(), key); ok {
		t.Fatal("Load hit from a hung remote")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Load took %v; the per-attempt timeout did not bound the hang", elapsed)
	}
	if got := reg.Snapshot().Counters[obs.MetricStoreRemoteError]; got != 1 {
		t.Errorf("%s = %d, want 1", obs.MetricStoreRemoteError, got)
	}
}

// The caller's context cancels an in-flight operation and suppresses
// further retries.
func TestRemoteStoreHonorsCallerContext(t *testing.T) {
	ps, rs := newPointsServer(t, RemoteOptions{Retries: 5})
	ps.failing(-1, http.StatusInternalServerError)
	key, _ := testPointEntry(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok := rs.Load(ctx, key); ok {
		t.Fatal("Load hit under a cancelled context")
	}
	if gets, _ := ps.counts(); gets > 1 {
		t.Errorf("server saw %d GETs under a cancelled context, want at most 1", gets)
	}
}

// The breaker opens after threshold consecutive failures, suppresses all
// traffic during the cooldown, lets exactly one probe through after it,
// and closes again when the probe succeeds.
func TestRemoteBreakerOpensAndRecovers(t *testing.T) {
	reg := obs.NewRegistry()
	clock := time.Unix(1000, 0)
	ps, rs := newPointsServer(t, RemoteOptions{
		Retries:          -1,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
		Metrics:          reg,
		now:              func() time.Time { return clock },
	})
	ps.failing(-1, http.StatusInternalServerError)
	key, data := testPointEntry(t)
	ctx := context.Background()

	rs.Load(ctx, key)
	rs.Load(ctx, key)
	if !rs.BreakerOpen() {
		t.Fatal("breaker still closed after threshold consecutive failures")
	}
	if st := rs.Status(); st.Kind != "remote" || !st.BreakerOpen || !st.Degraded() {
		t.Errorf("Status() = %+v, want remote/breaker-open/degraded", st)
	}
	snap := reg.Snapshot()
	if snap.Gauges[obs.MetricStoreRemoteBreakerOpen] != 1 {
		t.Error("breaker gauge not raised")
	}
	if snap.Counters[obs.MetricStoreRemoteBreakerOpens] != 1 {
		t.Error("breaker opens counter not incremented")
	}

	// Open: loads are instant misses, stores instant drops — no traffic.
	gets0, puts0 := ps.counts()
	if _, ok := rs.Load(ctx, key); ok {
		t.Fatal("Load hit with the breaker open")
	}
	rs.Store(ctx, key, data)
	if gets, puts := ps.counts(); gets != gets0 || puts != puts0 {
		t.Errorf("open breaker let traffic through: %d/%d GET/PUT, was %d/%d", gets, puts, gets0, puts0)
	}
	if got := reg.Snapshot().Counters[obs.MetricStoreRemoteDropped]; got != 1 {
		t.Errorf("%s = %d, want 1 (suppressed store)", obs.MetricStoreRemoteDropped, got)
	}

	// After the cooldown a failed probe restarts it — still no flood.
	clock = clock.Add(2 * time.Minute)
	gets0, _ = ps.counts()
	rs.Load(ctx, key) // the one probe, fails
	if gets, _ := ps.counts(); gets != gets0+1 {
		t.Errorf("half-open allowed %d probes, want 1", gets-gets0)
	}
	rs.Load(ctx, key) // cooldown restarted: suppressed
	if gets, _ := ps.counts(); gets != gets0+1 {
		t.Error("failed probe did not restart the cooldown")
	}

	// Remote heals; next cooldown's probe succeeds and closes the circuit.
	ps.failing(0, 0)
	ps.mu.Lock()
	ps.entries[key.String()] = data
	ps.mu.Unlock()
	clock = clock.Add(2 * time.Minute)
	if _, ok := rs.Load(ctx, key); !ok {
		t.Fatal("probe against a healed remote missed")
	}
	if rs.BreakerOpen() {
		t.Fatal("breaker still open after a successful probe")
	}
	if reg.Snapshot().Gauges[obs.MetricStoreRemoteBreakerOpen] != 0 {
		t.Error("breaker gauge not cleared after recovery")
	}
}

// End-to-end degradation: a scheduler whose only store is a dead remote
// still completes campaigns — it just measures everything itself.
func TestSchedulerCompletesWithDeadRemote(t *testing.T) {
	ps, rs := newPointsServer(t, RemoteOptions{Retries: -1, BreakerThreshold: 2})
	ps.failing(-1, http.StatusInternalServerError)
	s, err := New(Options{Workers: 2, Store: rs, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	out, err := s.Run(context.Background(), Request{App: testApp(t), Grid: testGrid()})
	if err != nil {
		t.Fatalf("Run with dead remote store: %v", err)
	}
	if out.Campaign == nil || out.Report == nil {
		t.Fatal("Run with dead remote returned no campaign/report")
	}
	if st := s.Stats(); st.DiskErrors != 0 {
		t.Errorf("dead remote latched the write-degradation counter: DiskErrors = %d", st.DiskErrors)
	}
	// Byte-identical to a storeless run of the same request.
	mem, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	want, err := mem.Run(context.Background(), Request{App: testApp(t), Grid: testGrid()})
	if err != nil {
		t.Fatal(err)
	}
	if string(mustJSON(t, want.Report)) != string(mustJSON(t, out.Report)) {
		t.Error("report behind a dead remote differs from a storeless run")
	}
}

// An entry larger than the response bound degrades to a miss.
func TestRemoteStoreOversizeEntryIsMiss(t *testing.T) {
	key, _ := testPointEntry(t)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/points/{key}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", fmt.Sprint(maxRemoteEntryBytes+2))
		big := make([]byte, 64<<10)
		for written := 0; written < maxRemoteEntryBytes+2; written += len(big) {
			if _, err := w.Write(big); err != nil {
				return
			}
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	rs, err := NewRemoteStore(ts.URL, RemoteOptions{Client: ts.Client(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rs.Load(context.Background(), key); ok {
		t.Fatal("Load accepted an entry beyond maxRemoteEntryBytes")
	}
}
