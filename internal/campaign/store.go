package campaign

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"time"

	"extrareq/internal/workload"
)

// Store is the persistence seam of the Scheduler: a content-addressed blob
// store keyed by campaign and point keys. Every method takes the context
// of the request (or drain) on whose behalf it runs, so a store backed by
// a network — RemoteStore, or TieredStore over it — inherits the caller's
// deadline and cancellation instead of stalling a campaign on a dead
// remote. Purely local implementations (DiskStore) may ignore the context.
//
// Implementations must be safe for concurrent use from multiple
// goroutines, tolerate concurrent writers of the same key (keys are
// content hashes, so racing writers carry identical bytes), and degrade
// unreadable entries to ok=false misses rather than errors — the Scheduler
// re-measures and overwrites on a miss. DiskStore is the default
// implementation; its shared-directory layout (one file per key, atomic
// rename) is additionally safe for multiple *processes* pointed at one
// directory, which is how N reqserve/CLI instances shard a campaign's
// points between them. RemoteStore shards without any shared filesystem
// by speaking the reqserve /v1/points protocol.
type Store interface {
	// Load returns the stored bytes for k, or ok=false when the entry is
	// absent, unreadable, or unreachable before ctx's deadline.
	Load(ctx context.Context, k Key) (data []byte, ok bool)
	// Store persists the entry under k, atomically with respect to
	// concurrent Loads of the same key. Implementations that cannot
	// persist durably right now may degrade (drop or defer the write) and
	// still return nil; a non-nil error tells the Scheduler the store is
	// permanently broken, which latches writes off for its lifetime.
	Store(ctx context.Context, k Key, data []byte) error
	// Sync forces completed writes durable — including flushing any
	// write-behind queue — before returning; drain paths call it once
	// more before exit.
	Sync(ctx context.Context) error
}

// StoreStatus is a point-in-time health view of a Scheduler's persistence
// tier, exposed to operators through reqserve's /readyz so "degraded but
// serving" is distinguishable from "draining".
type StoreStatus struct {
	// Kind names the tier: "memory" (no store), "disk", "remote", or
	// "tiered".
	Kind string `json:"kind"`
	// WritesDegraded reports that the Scheduler latched store writes off
	// after a write failure (reads stay live).
	WritesDegraded bool `json:"writes_degraded,omitempty"`
	// BreakerOpen reports that the remote tier's circuit breaker is open:
	// remote loads degrade to misses and remote writes are dropped until
	// the remote recovers.
	BreakerOpen bool `json:"breaker_open,omitempty"`
}

// Degraded reports whether any tier is operating below full capability.
func (s StoreStatus) Degraded() bool { return s.WritesDegraded || s.BreakerOpen }

// StatusReporter is the optional health interface of a Store. Stores with
// runtime failure modes (RemoteStore, TieredStore) implement it; the
// Scheduler folds the result into its own StoreStatus.
type StatusReporter interface {
	Status() StoreStatus
}

// Cache entry encoding. A single JSON document carries both the campaign
// and its report, prefixed with the format version and its own key so a
// load can prove the file is what the name claims. Memory and disk store
// the same bytes; every cache hit — warm or cold — is decoded from those
// bytes, so a hit can only ever produce what a fresh run marshals to.
type entry struct {
	Version  int                      `json:"version"`
	Key      string                   `json:"key"`
	App      string                   `json:"app"`
	Campaign *workload.Campaign       `json:"campaign"`
	Report   *workload.CampaignReport `json:"report"`
}

// EncodeEntry marshals a campaign + report into the cache entry
// representation under key — the exact bytes Decode and ValidateEntry
// accept. Callers that assemble campaigns outside the Scheduler's own Run
// path (the adaptive engine) use it to publish results through PutEntry.
func EncodeEntry(key Key, app string, c *workload.Campaign, rep *workload.CampaignReport) ([]byte, error) {
	return encode(key, app, c, rep)
}

// encode marshals a finished campaign into its cache representation.
func encode(key Key, app string, c *workload.Campaign, rep *workload.CampaignReport) ([]byte, error) {
	return json.Marshal(&entry{
		Version:  KeyVersion,
		Key:      key.String(),
		App:      app,
		Campaign: c,
		Report:   rep,
	})
}

// pointEntry is the cache representation of one measured (p, n)
// configuration: the sample (zero for quarantined configurations) and the
// full outcome (attempts, errors, quarantine), so an assembled campaign
// report is byte-identical to one that measured the point itself. Like the
// campaign entry it embeds the format version and its own key, so a load
// can prove the file is what the name claims.
type pointEntry struct {
	Version int                    `json:"version"`
	Key     string                 `json:"key"`
	App     string                 `json:"app"`
	Sample  workload.Sample        `json:"sample"`
	Outcome workload.ConfigOutcome `json:"outcome"`
}

// encodePoint marshals one measured configuration into its cache
// representation.
func encodePoint(key Key, app string, s workload.Sample, out workload.ConfigOutcome) ([]byte, error) {
	return json.Marshal(&pointEntry{
		Version: KeyVersion,
		Key:     key.String(),
		App:     app,
		Sample:  s,
		Outcome: out,
	})
}

// decodePoint unmarshals a point entry and validates it against the key
// that addressed it; any mismatch is treated as a miss by the Scheduler,
// which then measures the point afresh.
func decodePoint(key Key, data []byte) (workload.Sample, workload.ConfigOutcome, error) {
	var e pointEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return workload.Sample{}, workload.ConfigOutcome{}, fmt.Errorf("campaign: corrupt point entry: %w", err)
	}
	if e.Version != KeyVersion {
		return workload.Sample{}, workload.ConfigOutcome{}, fmt.Errorf("campaign: point entry version %d, want %d", e.Version, KeyVersion)
	}
	if e.Key != key.String() {
		return workload.Sample{}, workload.ConfigOutcome{}, fmt.Errorf("campaign: point entry key %s does not match %s", e.Key, key)
	}
	if !e.Outcome.Quarantined && e.Sample.Values == nil {
		return workload.Sample{}, workload.ConfigOutcome{}, fmt.Errorf("campaign: point entry missing sample values")
	}
	return e.Sample, e.Outcome, nil
}

// Decode unmarshals a marshaled cache entry (as returned by
// Scheduler.Lookup) and validates it against the key that addressed it.
// It is the exported face of decode for servers answering fetch-by-key
// requests from stored bytes.
func Decode(key Key, data []byte) (*workload.Campaign, *workload.CampaignReport, error) {
	return decode(key, data)
}

// decode unmarshals a cache entry and validates it against the key that
// addressed it. Any mismatch (format drift, truncation, a file renamed by
// hand) is an error; callers treat that as a cache miss, never a failure.
func decode(key Key, data []byte) (*workload.Campaign, *workload.CampaignReport, error) {
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, nil, fmt.Errorf("campaign: corrupt cache entry: %w", err)
	}
	if e.Version != KeyVersion {
		return nil, nil, fmt.Errorf("campaign: cache entry version %d, want %d", e.Version, KeyVersion)
	}
	if e.Key != key.String() {
		return nil, nil, fmt.Errorf("campaign: cache entry key %s does not match %s", e.Key, key)
	}
	if e.Campaign == nil || e.Report == nil {
		return nil, nil, fmt.Errorf("campaign: cache entry missing campaign or report")
	}
	return e.Campaign, e.Report, nil
}

// EntryKind classifies a validated cache entry.
type EntryKind int

const (
	// PointEntry is one measured (p, n) configuration.
	PointEntry EntryKind = iota
	// CampaignEntry is a whole finished campaign with its report.
	CampaignEntry
)

// ValidateEntry checks that data is a well-formed cache entry — point or
// campaign — whose embedded key matches k and whose format version is
// current. Servers accepting uploads on the /v1/points endpoint use it to
// keep garbage and stale-version entries out of a shared store: a peer
// running an older KeyVersion is rejected here instead of poisoning
// every later load (which would tolerate but re-measure the entry
// anyway). It returns what kind of entry the bytes carry.
func ValidateEntry(k Key, data []byte) (EntryKind, error) {
	if _, _, err := decodePoint(k, data); err == nil {
		return PointEntry, nil
	}
	if _, _, err := decode(k, data); err == nil {
		return CampaignEntry, nil
	}
	// Re-run the point decode for its error message: both decoders agree
	// on version/key mismatches, which are the interesting rejections.
	_, _, perr := decodePoint(k, data)
	return 0, perr
}

// DiskStore persists cache entries as one JSON file per key under a
// directory. Writes go through a temp file in the same directory followed
// by an atomic rename, so a crash can leave stale temp files but never a
// half-written entry; loads of files that fail to decode are treated as
// misses by the Scheduler, which then overwrites them with a fresh entry.
//
// The layout is safe for any number of writer processes sharing one
// directory: every entry is keyed by a content hash, so two processes
// racing on the same key rename byte-identical files over each other, and
// readers only ever observe complete entries. Point entries published
// mid-campaign (Scheduler assembly) land here one file at a time, which is
// what lets concurrent processes shard one campaign's points.
type DiskStore struct {
	dir string
}

// tmpPattern matches the temp files Store creates ("." + 64-hex key +
// ".tmp-" + CreateTemp's random suffix). OpenDiskStore reaps stale
// matches: a crash between CreateTemp and rename leaves them behind, and
// nothing else ever removes them from a long-lived cache directory.
var tmpPattern = regexp.MustCompile(`^\.[0-9a-f]{64}\.tmp-[0-9]+$`)

// tmpReapAge is how old a temp file must be before OpenDiskStore removes
// it. A healthy writer holds a temp file for milliseconds (write, fsync,
// rename), so anything this old is wreckage from a crash — while a
// freshly created temp may belong to a live writer process sharing the
// directory, whose rename must not be sabotaged by a sweeping opener. A
// variable so tests can reap immediately.
var tmpReapAge = time.Hour

// OpenDiskStore creates dir (and parents) if needed, sweeps stale temp
// files left by crashed writers, and returns the store. The sweep removes
// only files matching the store's own temp-name pattern and older than
// tmpReapAge; entries, unrelated files, and temps a live writer process
// may still own are never touched. Sweep failures are ignored — reaping
// is hygiene, not correctness.
func OpenDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: cache dir: %w", err)
	}
	if names, err := os.ReadDir(dir); err == nil {
		cutoff := time.Now().Add(-tmpReapAge)
		for _, de := range names {
			if de.IsDir() || !tmpPattern.MatchString(de.Name()) {
				continue
			}
			if info, err := de.Info(); err == nil && info.ModTime().Before(cutoff) {
				os.Remove(filepath.Join(dir, de.Name()))
			}
		}
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *DiskStore) Dir() string { return s.dir }

// Status reports the disk tier. The Scheduler overlays its own
// write-degradation latch; the store itself has no further state.
func (s *DiskStore) Status() StoreStatus { return StoreStatus{Kind: "disk"} }

func (s *DiskStore) path(k Key) string {
	return filepath.Join(s.dir, k.String()+".json")
}

// Load returns the stored bytes for k, or ok=false if the entry does not
// exist or cannot be read. Validation of the bytes is the caller's job
// (decode), so an unreadable or corrupt file degrades to a miss. Local
// reads are fast and uncancellable mid-syscall, so ctx is ignored.
func (s *DiskStore) Load(_ context.Context, k Key) (data []byte, ok bool) {
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Store writes the entry atomically and durably: temp file, fsync, rename,
// fsync of the parent directory. Rename within one directory is atomic on
// POSIX, so concurrent writers of the same key race benignly — both write
// identical bytes (the key is a content hash) and the loser's rename just
// replaces them. The two fsyncs matter to a long-lived server: without
// them a machine crash shortly after the rename can leave a zero-length or
// unlinked entry, which the tolerant loader would treat as a miss but
// which silently throws away a measured campaign.
func (s *DiskStore) Store(ctx context.Context, k Key, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, "."+k.String()+".tmp-*")
	if err != nil {
		return fmt.Errorf("campaign: cache write: %w", err)
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: cache write: %w", werr)
	}
	if err := os.Rename(tmp.Name(), s.path(k)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: cache write: %w", err)
	}
	if err := s.Sync(ctx); err != nil {
		return err
	}
	return nil
}

// Sync fsyncs the store directory itself, making completed renames
// durable. Store calls it after every write; drain paths call it once more
// through Scheduler.Flush before exit.
func (s *DiskStore) Sync(_ context.Context) error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("campaign: cache dir sync: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr == nil {
		serr = cerr
	}
	if serr != nil {
		return fmt.Errorf("campaign: cache dir sync: %w", serr)
	}
	return nil
}

// lru is a small mutex-guarded LRU over marshaled cache entries. It stores
// bytes, not decoded structs, so hits from memory and disk share one code
// path and identical aliasing behavior (every hit decodes fresh objects).
type lru struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[Key]*list.Element
}

type lruItem struct {
	key  Key
	data []byte
}

func newLRU(capacity int) *lru {
	return &lru{
		cap:   capacity,
		order: list.New(),
		items: make(map[Key]*list.Element),
	}
}

func (c *lru) get(k Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruItem).data, true
}

func (c *lru) put(k Key, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*lruItem).data = data
		c.order.MoveToFront(el)
		return
	}
	c.items[k] = c.order.PushFront(&lruItem{key: k, data: data})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruItem).key)
	}
}

func (c *lru) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
