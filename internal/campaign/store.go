package campaign

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"extrareq/internal/workload"
)

// Cache entry encoding. A single JSON document carries both the campaign
// and its report, prefixed with the format version and its own key so a
// load can prove the file is what the name claims. Memory and disk store
// the same bytes; every cache hit — warm or cold — is decoded from those
// bytes, so a hit can only ever produce what a fresh run marshals to.
type entry struct {
	Version  int                      `json:"version"`
	Key      string                   `json:"key"`
	App      string                   `json:"app"`
	Campaign *workload.Campaign       `json:"campaign"`
	Report   *workload.CampaignReport `json:"report"`
}

// encode marshals a finished campaign into its cache representation.
func encode(key Key, app string, c *workload.Campaign, rep *workload.CampaignReport) ([]byte, error) {
	return json.Marshal(&entry{
		Version:  KeyVersion,
		Key:      key.String(),
		App:      app,
		Campaign: c,
		Report:   rep,
	})
}

// Decode unmarshals a marshaled cache entry (as returned by
// Scheduler.Lookup) and validates it against the key that addressed it.
// It is the exported face of decode for servers answering fetch-by-key
// requests from stored bytes.
func Decode(key Key, data []byte) (*workload.Campaign, *workload.CampaignReport, error) {
	return decode(key, data)
}

// decode unmarshals a cache entry and validates it against the key that
// addressed it. Any mismatch (format drift, truncation, a file renamed by
// hand) is an error; callers treat that as a cache miss, never a failure.
func decode(key Key, data []byte) (*workload.Campaign, *workload.CampaignReport, error) {
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, nil, fmt.Errorf("campaign: corrupt cache entry: %w", err)
	}
	if e.Version != KeyVersion {
		return nil, nil, fmt.Errorf("campaign: cache entry version %d, want %d", e.Version, KeyVersion)
	}
	if e.Key != key.String() {
		return nil, nil, fmt.Errorf("campaign: cache entry key %s does not match %s", e.Key, key)
	}
	if e.Campaign == nil || e.Report == nil {
		return nil, nil, fmt.Errorf("campaign: cache entry missing campaign or report")
	}
	return e.Campaign, e.Report, nil
}

// DiskStore persists cache entries as one JSON file per key under a
// directory. Writes go through a temp file in the same directory followed
// by an atomic rename, so a crash can leave stale temp files but never a
// half-written entry; loads of files that fail to decode are treated as
// misses by the Scheduler, which then overwrites them with a fresh entry.
type DiskStore struct {
	dir string
}

// OpenDiskStore creates dir (and parents) if needed and returns the store.
func OpenDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: cache dir: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *DiskStore) Dir() string { return s.dir }

func (s *DiskStore) path(k Key) string {
	return filepath.Join(s.dir, k.String()+".json")
}

// Load returns the stored bytes for k, or ok=false if the entry does not
// exist or cannot be read. Validation of the bytes is the caller's job
// (decode), so an unreadable or corrupt file degrades to a miss.
func (s *DiskStore) Load(k Key) (data []byte, ok bool) {
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Store writes the entry atomically and durably: temp file, fsync, rename,
// fsync of the parent directory. Rename within one directory is atomic on
// POSIX, so concurrent writers of the same key race benignly — both write
// identical bytes (the key is a content hash) and the loser's rename just
// replaces them. The two fsyncs matter to a long-lived server: without
// them a machine crash shortly after the rename can leave a zero-length or
// unlinked entry, which the tolerant loader would treat as a miss but
// which silently throws away a measured campaign.
func (s *DiskStore) Store(k Key, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, "."+k.String()+".tmp-*")
	if err != nil {
		return fmt.Errorf("campaign: cache write: %w", err)
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: cache write: %w", werr)
	}
	if err := os.Rename(tmp.Name(), s.path(k)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: cache write: %w", err)
	}
	if err := s.Sync(); err != nil {
		return err
	}
	return nil
}

// Sync fsyncs the store directory itself, making completed renames
// durable. Store calls it after every write; drain paths call it once more
// through Scheduler.Flush before exit.
func (s *DiskStore) Sync() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("campaign: cache dir sync: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr == nil {
		serr = cerr
	}
	if serr != nil {
		return fmt.Errorf("campaign: cache dir sync: %w", serr)
	}
	return nil
}

// lru is a small mutex-guarded LRU over marshaled cache entries. It stores
// bytes, not decoded structs, so hits from memory and disk share one code
// path and identical aliasing behavior (every hit decodes fresh objects).
type lru struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[Key]*list.Element
}

type lruItem struct {
	key  Key
	data []byte
}

func newLRU(capacity int) *lru {
	return &lru{
		cap:   capacity,
		order: list.New(),
		items: make(map[Key]*list.Element),
	}
}

func (c *lru) get(k Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruItem).data, true
}

func (c *lru) put(k Key, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*lruItem).data = data
		c.order.MoveToFront(el)
		return
	}
	c.items[k] = c.order.PushFront(&lruItem{key: k, data: data})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruItem).key)
	}
}

func (c *lru) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
