package campaign

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"extrareq/internal/obs"
)

// A closed scheduler must reject work with the typed sentinel instead of
// panicking on the closed pool — servers race Close against late requests
// during shutdown.
func TestRunAfterCloseReturnsErrClosed(t *testing.T) {
	s, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if !s.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	req := Request{App: testApp(t), Grid: testGrid()}
	if _, err := s.Run(context.Background(), req); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run after Close: err = %v, want ErrClosed", err)
	}
	_, errs := s.RunBatch(context.Background(), []Request{req, req})
	for i, err := range errs {
		if !errors.Is(err, ErrClosed) {
			t.Errorf("RunBatch[%d] after Close: err = %v, want ErrClosed", i, err)
		}
	}
}

func TestCloseIdempotent(t *testing.T) {
	s, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // second call must not panic or deadlock
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); s.Close() }()
	}
	wg.Wait()
}

// A disk-store write failure must degrade the scheduler to memory-only
// caching — counted and warned about, but never surfaced to the request.
func TestDiskWriteFailureDegradesToMemoryOnly(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	var warnings []string
	logf := func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}
	s, err := New(Options{Workers: 2, Dir: dir, Logf: logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Break the store out from under the scheduler: replace the cache
	// directory with a regular file so CreateTemp fails (works even as
	// root, where permission bits would not).
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	req := Request{App: testApp(t), Grid: testGrid(), Metrics: reg}
	out, err := s.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("Run with broken disk store: err = %v, want nil (degrade, not fail)", err)
	}
	if out == nil || out.Campaign == nil {
		t.Fatal("Run with broken disk store returned no campaign")
	}
	st := s.Stats()
	if st.DiskErrors != 1 {
		t.Errorf("Stats.DiskErrors = %d, want 1", st.DiskErrors)
	}
	if got := reg.Snapshot().Counters[MetricCacheDiskError]; got != 1 {
		t.Errorf("%s counter = %d, want 1", MetricCacheDiskError, got)
	}
	if len(warnings) != 1 {
		t.Fatalf("logged %d warnings (%q), want exactly 1", len(warnings), warnings)
	}

	// Degraded, not broken: repeats are served from the in-memory cache,
	// byte-identical, with no further disk attempts or warnings.
	warm, err := s.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("warm run after degrade: %v", err)
	}
	if !warm.CacheHit {
		t.Error("warm run after degrade was not a memory cache hit")
	}
	if !bytes.Equal(mustJSON(t, out.Campaign), mustJSON(t, warm.Campaign)) {
		t.Error("memory hit after degrade is not byte-identical")
	}
	if st := s.Stats(); st.DiskErrors != 1 {
		t.Errorf("DiskErrors after warm run = %d, want still 1", st.DiskErrors)
	}
	if len(warnings) != 1 {
		t.Errorf("warned %d times, want exactly once", len(warnings))
	}

	// A fresh (distinct) campaign must also succeed without touching disk.
	req2 := req
	req2.Grid.Seed = 8
	if _, err := s.Run(context.Background(), req2); err != nil {
		t.Fatalf("distinct run after degrade: %v", err)
	}
	if st := s.Stats(); st.DiskErrors != 1 {
		t.Errorf("DiskErrors after distinct run = %d, want still 1 (disk skipped)", st.DiskErrors)
	}
}

// Lookup serves stored bytes without running anything, from memory or disk.
func TestSchedulerLookup(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{Workers: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	req := Request{App: testApp(t), Grid: testGrid()}
	key := ComputeKey(req)
	if _, ok := s.Lookup(context.Background(), key); ok {
		t.Fatal("Lookup hit before anything ran")
	}
	out, err := s.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	data, ok := s.Lookup(context.Background(), key)
	if !ok {
		t.Fatal("Lookup miss after Run")
	}
	c, rep, err := Decode(key, data)
	if err != nil {
		t.Fatalf("Decode(Lookup bytes): %v", err)
	}
	if !bytes.Equal(mustJSON(t, c), mustJSON(t, out.Campaign)) {
		t.Error("decoded campaign differs from Run outcome")
	}
	if rep == nil {
		t.Error("decoded report is nil")
	}
	if err := s.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	s.Close()

	// A fresh scheduler over the same directory serves the entry from disk.
	s2, err := New(Options{Workers: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	disk, ok := s2.Lookup(context.Background(), key)
	if !ok {
		t.Fatal("Lookup miss from disk in fresh scheduler")
	}
	if !bytes.Equal(disk, data) {
		t.Error("disk Lookup bytes differ from memory Lookup bytes")
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	req := Request{App: testApp(t), Grid: testGrid()}
	key := ComputeKey(req)
	back, err := ParseKey(key.String())
	if err != nil {
		t.Fatalf("ParseKey(%q): %v", key, err)
	}
	if back != key {
		t.Error("ParseKey did not round-trip")
	}
	for _, bad := range []string{"", "xyz", key.String()[:10], key.String() + "00"} {
		if _, err := ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q) accepted a malformed key", bad)
		}
	}
}
