package campaign

import (
	"context"
	"strings"
	"testing"
)

// Remote-tier benchmarks quantify the sharding trade: RemoteWarm serves a
// campaign entirely from a peer's point store over HTTP (a fresh
// scheduler per iteration, so its memory LRU cannot shortcut the wire);
// RemoteCold is the same scheduler shape measuring everything and
// publishing it remotely. The gap is what a shard saves per campaign it
// can assemble from the fleet instead of measuring. Both run one
// iteration in the scripts/check.sh bench smoke.

func BenchmarkRemoteWarm(b *testing.B) {
	ps, seedStore := newPointsServer(b, RemoteOptions{})
	seeder, err := New(Options{Workers: 2, Store: seedStore, Logf: b.Logf})
	if err != nil {
		b.Fatal(err)
	}
	req := Request{App: testApp(b), Grid: testGrid()}
	if _, err := seeder.Run(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	seeder.Close()
	b.ReportAllocs()
	b.ResetTimer()
	baseURL := strings.TrimSuffix(seedStore.base, "/v1/points/")
	for i := 0; i < b.N; i++ {
		// A fresh client per iteration: no known-keys dedup shortcuts.
		remote, err := NewRemoteStore(baseURL, RemoteOptions{Client: seedStore.client, Logf: b.Logf})
		if err != nil {
			b.Fatal(err)
		}
		s, err := New(Options{Workers: 2, Store: remote, Logf: b.Logf})
		if err != nil {
			b.Fatal(err)
		}
		out, err := s.Run(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if !out.CacheHit {
			b.Fatal("warm iteration missed the remote cache")
		}
		s.Close()
	}
	_ = ps
}

func BenchmarkRemoteCold(b *testing.B) {
	_, remote := newPointsServer(b, RemoteOptions{})
	s, err := New(Options{Workers: 2, Store: remote, Logf: b.Logf})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	app := testApp(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid := testGrid()
		grid.Seed = int64(i + 1) // fresh keys: every load misses remotely
		out, err := s.Run(context.Background(), Request{App: app, Grid: grid})
		if err != nil {
			b.Fatal(err)
		}
		if out.CacheHit {
			b.Fatal("cold iteration hit the cache")
		}
	}
}
