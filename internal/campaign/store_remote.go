package campaign

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"context"

	"extrareq/internal/obs"
)

// RemoteStore is a Store backed by a peer speaking the reqserve point
// protocol:
//
//	GET /v1/points/{key}  → 200 body | 304 (If-None-Match) | 404
//	PUT /v1/points/{key}  → 204
//
// Keys are content hashes, so PUT is idempotent — racing writers carry
// identical bytes and the last rename wins server-side — and a GET body
// can never go stale, which is why the protocol leans on ETag (the key
// itself) rather than cache-control heuristics. The client is built for
// campaigns that must never stall on a sick remote:
//
//   - every request runs under a per-request deadline derived from the
//     caller's context;
//   - transport errors and 5xx responses are retried with exponential
//     backoff, a bounded number of times;
//   - a circuit breaker opens after consecutive failures, turning loads
//     into instant misses and dropping stores until a cool-down expires,
//     after which a single probe is allowed through (half-open);
//   - Store never returns an error: a failed or suppressed write is
//     counted (store_remote_error / store_remote_dropped) and dropped,
//     because a remote blip must degrade the campaign to local-only
//     execution, not latch the Scheduler's writes off for its lifetime.
//
// Keys confirmed present on the remote (a successful GET or PUT) are
// remembered in a bounded set so re-publishing the same entry — common
// when overlapping campaigns each finish and store the points they share
// — skips the redundant body entirely.
type RemoteStore struct {
	base    string // ".../v1/points/" with trailing slash
	client  *http.Client
	timeout time.Duration
	retries int
	backoff time.Duration
	metrics *obs.RemoteStore
	logf    func(format string, args ...any)
	sleep   func(time.Duration)
	br      *breaker

	mu    sync.Mutex
	known map[Key]struct{} // keys confirmed present on the remote
}

// RemoteOptions configures NewRemoteStore; the zero value selects the
// defaults documented per field.
type RemoteOptions struct {
	// Timeout bounds each individual HTTP attempt; <= 0 selects
	// DefaultRemoteTimeout. The caller's context still applies on top.
	Timeout time.Duration
	// Retries is how many extra attempts a failed request gets (transport
	// errors and 5xx only — a 404 is an answer, not a failure). < 0
	// disables retries; 0 selects DefaultRemoteRetries.
	Retries int
	// Backoff is the first retry's delay, doubling per attempt; <= 0
	// selects DefaultRemoteBackoff.
	Backoff time.Duration
	// BreakerThreshold is how many consecutive failed operations open the
	// circuit; <= 0 selects DefaultBreakerThreshold.
	BreakerThreshold int
	// BreakerCooldown is how long the circuit stays open before one probe
	// is allowed through; <= 0 selects DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// Metrics receives the store_remote_* instruments; nil disables them.
	Metrics *obs.Registry
	// Client replaces http.DefaultClient (tests inject httptest clients).
	Client *http.Client
	// Logf receives the rare operational warnings (breaker transitions).
	// nil selects log.Printf.
	Logf func(format string, args ...any)
	// now and sleep replace the clocks in tests.
	now   func() time.Time
	sleep func(time.Duration)
}

// Remote store defaults.
const (
	DefaultRemoteTimeout    = 5 * time.Second
	DefaultRemoteRetries    = 2
	DefaultRemoteBackoff    = 50 * time.Millisecond
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 10 * time.Second
	// maxKnownKeys bounds the confirmed-present set; beyond it the set is
	// reset rather than evicted piecemeal — re-sending a body the remote
	// already has is harmless (PUT is idempotent), forgetting is cheap.
	maxKnownKeys = 1 << 14
	// maxRemoteEntryBytes bounds a GET response body; entries are JSON
	// documents of at most a few hundred KB even for large grids.
	maxRemoteEntryBytes = 8 << 20
)

// NewRemoteStore builds a remote store against baseURL (the peer's root,
// e.g. "http://cachehost:8080"; the /v1/points path is appended).
func NewRemoteStore(baseURL string, o RemoteOptions) (*RemoteStore, error) {
	u, err := url.Parse(baseURL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("campaign: remote store URL %q: want http(s)://host[:port]", baseURL)
	}
	if o.Timeout <= 0 {
		o.Timeout = DefaultRemoteTimeout
	}
	if o.Retries == 0 {
		o.Retries = DefaultRemoteRetries
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.Backoff <= 0 {
		o.Backoff = DefaultRemoteBackoff
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = DefaultBreakerThreshold
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = DefaultBreakerCooldown
	}
	client := o.Client
	if client == nil {
		client = http.DefaultClient
	}
	logf := o.Logf
	if logf == nil {
		logf = log.Printf
	}
	now := o.now
	if now == nil {
		now = time.Now
	}
	sleep := o.sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	m := obs.NewRemoteStore(o.Metrics)
	return &RemoteStore{
		base:    strings.TrimRight(u.String(), "/") + "/v1/points/",
		client:  client,
		timeout: o.Timeout,
		retries: o.Retries,
		backoff: o.Backoff,
		metrics: m,
		logf:    logf,
		sleep:   sleep,
		br: &breaker{
			threshold: o.BreakerThreshold,
			cooldown:  o.BreakerCooldown,
			now:       now,
			metrics:   m,
			logf:      logf,
		},
		known: map[Key]struct{}{},
	}, nil
}

// Status reports the remote tier's breaker state.
func (s *RemoteStore) Status() StoreStatus {
	return StoreStatus{Kind: "remote", BreakerOpen: s.br.open()}
}

// BreakerOpen reports whether the circuit breaker is currently open.
func (s *RemoteStore) BreakerOpen() bool { return s.br.open() }

// Load fetches the entry for k from the remote. Absence (404), transport
// failure after retries, and an open breaker all degrade to ok=false —
// the Scheduler then measures the point itself, which is the whole
// degradation story: a dead remote costs extra measurement, never a
// failed campaign.
func (s *RemoteStore) Load(ctx context.Context, k Key) ([]byte, bool) {
	if !s.br.allow() {
		s.metrics.Miss()
		return nil, false
	}
	start := time.Now()
	data, found, err := s.do(ctx, k, nil)
	s.metrics.ObserveLatency(time.Since(start).Seconds())
	if err != nil {
		s.br.failure()
		s.metrics.Error()
		s.metrics.Miss()
		return nil, false
	}
	s.br.success()
	if !found {
		s.metrics.Miss()
		return nil, false
	}
	s.markKnown(k)
	s.metrics.Hit()
	return data, true
}

// Store uploads the entry under k unless the remote is already confirmed
// to have it. Failures are absorbed: the write is counted as dropped (and
// as an error when it actually went out and failed) and the campaign
// proceeds on local state alone. Store therefore always returns nil — the
// Scheduler's write-degradation latch is for permanently broken stores,
// and a remote that is down now may be back in a minute; the breaker
// handles that cadence.
func (s *RemoteStore) Store(ctx context.Context, k Key, data []byte) error {
	if s.isKnown(k) {
		return nil // the remote has these exact bytes; skip the body
	}
	if !s.br.allow() {
		s.metrics.Dropped()
		return nil
	}
	start := time.Now()
	_, _, err := s.do(ctx, k, data)
	s.metrics.ObserveLatency(time.Since(start).Seconds())
	if err != nil {
		s.br.failure()
		s.metrics.Error()
		s.metrics.Dropped()
		return nil
	}
	s.br.success()
	s.markKnown(k)
	return nil
}

// Sync is a no-op: every Store call is synchronous through to the remote
// (or deliberately dropped), so there is nothing buffered to flush.
func (s *RemoteStore) Sync(context.Context) error { return nil }

// do performs one logical operation with retries: a GET when data is nil,
// a PUT otherwise. It returns found=false for a 404, an error for
// transport failures and non-2xx statuses that survived the retry budget.
func (s *RemoteStore) do(ctx context.Context, k Key, data []byte) (body []byte, found bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	backoff := s.backoff
	for attempt := 0; ; attempt++ {
		body, found, retryable, aerr := s.attempt(ctx, k, data)
		if aerr == nil {
			return body, found, nil
		}
		err = aerr
		if !retryable || attempt >= s.retries || ctx.Err() != nil {
			return nil, false, err
		}
		s.sleep(backoff)
		backoff *= 2
	}
}

// attempt is one HTTP round trip. retryable distinguishes 5xx/transport
// failures (worth another attempt) from everything else.
func (s *RemoteStore) attempt(ctx context.Context, k Key, data []byte) (body []byte, found, retryable bool, err error) {
	actx, cancel := context.WithTimeout(ctx, s.timeout)
	defer cancel()
	var req *http.Request
	if data == nil {
		req, err = http.NewRequestWithContext(actx, http.MethodGet, s.base+k.String(), nil)
	} else {
		req, err = http.NewRequestWithContext(actx, http.MethodPut, s.base+k.String(), bytes.NewReader(data))
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	}
	if err != nil {
		return nil, false, false, err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, false, true, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return nil, false, false, nil
	case resp.StatusCode >= 500:
		return nil, false, true, fmt.Errorf("campaign: remote store: %s %s: %s",
			req.Method, k, resp.Status)
	case resp.StatusCode >= 300:
		// 4xx (and the unsolicited 304): a protocol disagreement, not an
		// outage — retrying the same request cannot help.
		return nil, false, false, fmt.Errorf("campaign: remote store: %s %s: %s",
			req.Method, k, resp.Status)
	}
	if data != nil {
		return nil, true, false, nil // PUT 2xx: nothing to read
	}
	body, err = io.ReadAll(io.LimitReader(resp.Body, maxRemoteEntryBytes+1))
	if err != nil {
		return nil, false, true, err
	}
	if len(body) > maxRemoteEntryBytes {
		return nil, false, false, fmt.Errorf("campaign: remote store: entry %s exceeds %d bytes", k, maxRemoteEntryBytes)
	}
	return body, true, false, nil
}

func (s *RemoteStore) isKnown(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.known[k]
	return ok
}

func (s *RemoteStore) markKnown(k Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.known) >= maxKnownKeys {
		s.known = map[Key]struct{}{}
	}
	s.known[k] = struct{}{}
}

// breaker is a consecutive-failure circuit breaker. Closed passes
// everything; threshold consecutive failures open it; after cooldown one
// probe is allowed (half-open) — its success closes the circuit, its
// failure re-opens it for another cooldown.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	metrics   *obs.RemoteStore
	logf      func(format string, args ...any)

	failures int
	isOpen   bool
	probing  bool
	openedAt time.Time
}

// allow reports whether an operation may reach the remote right now.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.isOpen {
		return true
	}
	if b.now().Sub(b.openedAt) >= b.cooldown && !b.probing {
		b.probing = true // half-open: exactly one probe per cooldown
		return true
	}
	return false
}

// success records a completed operation, closing the circuit.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	wasOpen := b.isOpen
	b.failures = 0
	b.isOpen = false
	b.probing = false
	if wasOpen {
		b.metrics.SetBreakerOpen(false)
		b.logf("campaign: remote store recovered, circuit closed")
	}
}

// failure records a failed operation, opening the circuit at the
// threshold (or immediately when a half-open probe fails).
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	reopen := b.probing
	b.probing = false
	if b.isOpen {
		if reopen {
			b.openedAt = b.now() // failed probe: restart the cooldown
		}
		return
	}
	if b.failures >= b.threshold {
		b.isOpen = true
		b.openedAt = b.now()
		b.metrics.SetBreakerOpen(true)
		b.metrics.BreakerOpened()
		b.logf("campaign: remote store circuit opened after %d consecutive failures (cooldown %s)",
			b.failures, b.cooldown)
	}
}

// open reports the breaker state.
func (b *breaker) open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.isOpen
}
