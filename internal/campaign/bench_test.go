package campaign

import (
	"context"
	"testing"
)

// Cold/warm cache benchmarks back the scheduler's headline claim: a warm
// cache serves a campaign at least an order of magnitude faster than
// measuring it. Cold iterations defeat the cache by varying the grid seed
// (a key ingredient); warm iterations repeat one request. Both run one
// iteration in the scripts/check.sh bench smoke.

func BenchmarkMeasureCampaignColdCache(b *testing.B) {
	s, err := New(Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	app := testApp(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid := testGrid()
		grid.Seed = int64(i + 1) // fresh key every iteration
		out, err := s.Run(context.Background(), Request{App: app, Grid: grid})
		if err != nil {
			b.Fatal(err)
		}
		if out.CacheHit {
			b.Fatal("cold iteration hit the cache")
		}
	}
}

func BenchmarkMeasureCampaignWarmCache(b *testing.B) {
	s, err := New(Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	req := Request{App: testApp(b), Grid: testGrid()}
	if _, err := s.Run(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.Run(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if !out.CacheHit {
			b.Fatal("warm iteration missed the cache")
		}
	}
}
