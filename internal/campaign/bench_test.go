package campaign

import (
	"context"
	"testing"
)

// Cold/warm cache benchmarks back the scheduler's headline claim: a warm
// cache serves a campaign at least an order of magnitude faster than
// measuring it. Cold iterations defeat the cache by varying the grid seed
// (a key ingredient); warm iterations repeat one request. Both run one
// iteration in the scripts/check.sh bench smoke.

func BenchmarkMeasureCampaignColdCache(b *testing.B) {
	s, err := New(Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	app := testApp(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid := testGrid()
		grid.Seed = int64(i + 1) // fresh key every iteration
		out, err := s.Run(context.Background(), Request{App: app, Grid: grid})
		if err != nil {
			b.Fatal(err)
		}
		if out.CacheHit {
			b.Fatal("cold iteration hit the cache")
		}
	}
}

func BenchmarkMeasureCampaignWarmCache(b *testing.B) {
	s, err := New(Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	req := Request{App: testApp(b), Grid: testGrid()}
	if _, err := s.Run(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.Run(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if !out.CacheHit {
			b.Fatal("warm iteration missed the cache")
		}
	}
}

// Overlap benchmarks quantify point-level reuse: every iteration runs a
// campaign sharing half its grid with an already cached base campaign.
// Warm assembles the shared half from point entries and measures only the
// novel half; Cold is the same workload with nothing cached, the
// apples-to-apples baseline. The iteration grids vary their novel column
// (never their seed), so campaign-level entries cannot satisfy them — the
// speedup is attributable to point reuse alone.

func BenchmarkOverlapWarm(b *testing.B) {
	s, err := New(Options{MemPoints: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	app := testApp(b)
	base := testGrid() // {2,4} x {64,128}: the shared half is n=64
	if _, err := s.Run(context.Background(), Request{App: app, Grid: base}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	reused := 0
	for i := 0; i < b.N; i++ {
		grid := base
		grid.Ns = []int{64, 1024 + i} // half shared with base, half novel
		out, err := s.Run(context.Background(), Request{App: app, Grid: grid})
		if err != nil {
			b.Fatal(err)
		}
		if out.PointsReused != len(grid.Procs) {
			b.Fatalf("iteration reused %d points, want %d", out.PointsReused, len(grid.Procs))
		}
		reused += out.PointsReused
	}
	b.ReportMetric(float64(reused)/float64(b.N), "points-reused/op")
}

func BenchmarkOverlapCold(b *testing.B) {
	s, err := New(Options{MemPoints: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	app := testApp(b)
	base := testGrid()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid := base
		grid.Seed = int64(i + 1) // fresh keys: nothing shared
		grid.Ns = []int{64, 1024 + i}
		out, err := s.Run(context.Background(), Request{App: app, Grid: grid})
		if err != nil {
			b.Fatal(err)
		}
		if out.PointsReused != 0 {
			b.Fatal("cold iteration reused points")
		}
	}
	b.ReportMetric(0, "points-reused/op")
}
