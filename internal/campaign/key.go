package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// KeyVersion salts every cache key. Bump it whenever a change anywhere in
// the measurement stack (simmpi algorithms, fault derivation, app kernels,
// sampling order, ...) can alter campaign bytes: old entries then simply
// stop matching, which is the entire invalidation story — no migration, no
// deletion pass.
const KeyVersion = 1

// Key is the content address of a campaign request: two requests share a
// key exactly when the measurement they describe is byte-identical (the
// determinism guarantee of ResilientRunner — seeds derive from plan and
// configuration, never from scheduling).
type Key [sha256.Size]byte

// String returns the lowercase hex form, which is also the on-disk file
// stem.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the hex form produced by Key.String. Servers use it to
// turn a client-supplied key path segment back into a cache address.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return Key{}, fmt.Errorf("campaign: malformed key %q (want %d hex bytes)", s, len(k))
	}
	copy(k[:], b)
	return k, nil
}

// ComputeKey hashes everything a campaign's bytes depend on: the version
// salt, the app name, the grid (procs, problem sizes, seed, repeats), the
// canonical fault-spec string (inactive plans hash like no plan, because
// they measure like no plan), the retry budget, and the min-points
// threshold. Observability handles are deliberately excluded — tracing a
// campaign does not change its result.
func ComputeKey(req Request) Key {
	h := sha256.New()
	fmt.Fprintf(h, "extrareq/campaign/v%d\n", KeyVersion)
	fmt.Fprintf(h, "app:%s\n", appName(req.App))
	fmt.Fprintf(h, "procs:%v\nns:%v\nseed:%d\nrepeats:%d\n",
		req.Grid.Procs, req.Grid.Ns, req.Grid.Seed, req.Grid.Repeats)
	plan := ""
	if req.Faults != nil && req.Faults.Active() {
		plan = req.Faults.String()
	}
	fmt.Fprintf(h, "faults:%s\n", plan)
	retries := req.Retries
	if retries < 0 {
		retries = 0
	}
	minPoints := req.MinPoints
	if minPoints < 0 {
		minPoints = 0
	}
	fmt.Fprintf(h, "retries:%d\nminpoints:%d\n", retries, minPoints)
	var k Key
	h.Sum(k[:0])
	return k
}

// ComputePointKey hashes everything one (p, n) measurement configuration's
// bytes depend on: the version salt, the app name, the configuration
// itself, the grid seed and repeat count (each repeat derives its run seed
// from them), the canonical fault-spec string (per-run fault seeds derive
// from the plan and the configuration), and the retry budget (it decides
// how many attempts a failing configuration gets, which is part of the
// recorded outcome). MinPoints is deliberately excluded — it only shapes
// the assembled report's axis warnings, never a point's measurement — so
// campaigns that differ only in their coverage threshold share every
// point. The key is the atomic unit of measurement reuse: two campaigns
// whose grids overlap share the point entries of their intersection.
func ComputePointKey(req Request, p, n int) Key {
	h := sha256.New()
	fmt.Fprintf(h, "extrareq/point/v%d\n", KeyVersion)
	fmt.Fprintf(h, "app:%s\n", appName(req.App))
	fmt.Fprintf(h, "p:%d\nn:%d\nseed:%d\nrepeats:%d\n",
		p, n, req.Grid.Seed, req.Grid.Repeats)
	plan := ""
	if req.Faults != nil && req.Faults.Active() {
		plan = req.Faults.String()
	}
	fmt.Fprintf(h, "faults:%s\n", plan)
	retries := req.Retries
	if retries < 0 {
		retries = 0
	}
	fmt.Fprintf(h, "retries:%d\n", retries)
	var k Key
	h.Sum(k[:0])
	return k
}
