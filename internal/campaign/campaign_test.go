package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"extrareq/internal/apps"
	"extrareq/internal/obs"
	"extrareq/internal/simmpi"
	"extrareq/internal/workload"
)

// testGrid is small enough that a campaign runs in milliseconds but still
// exercises both grid axes and repeats.
func testGrid() workload.Grid {
	return workload.Grid{Procs: []int{2, 4}, Ns: []int{64, 128}, Seed: 7, Repeats: 2}
}

func testApp(t testing.TB) apps.App {
	t.Helper()
	app, ok := apps.ByName("Kripke")
	if !ok {
		t.Fatal("app Kripke not registered")
	}
	return app
}

func mustJSON(t testing.TB, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

func TestComputeKeySensitivity(t *testing.T) {
	app := testApp(t)
	base := Request{App: app, Grid: testGrid(), Retries: 2, MinPoints: 5}
	k0 := ComputeKey(base)
	if k0 != ComputeKey(base) {
		t.Fatal("same request hashed to different keys")
	}

	perturb := map[string]Request{}
	r := base
	r.Grid.Seed = 8
	perturb["seed"] = r
	r = base
	r.Grid.Procs = []int{2, 8}
	perturb["procs"] = r
	r = base
	r.Grid.Ns = []int{64, 256}
	perturb["ns"] = r
	r = base
	r.Grid.Repeats = 3
	perturb["repeats"] = r
	r = base
	r.Retries = 3
	perturb["retries"] = r
	r = base
	r.MinPoints = 4
	perturb["minpoints"] = r
	r = base
	r.Faults = &simmpi.FaultPlan{Seed: 1, KillRank: -1, Drop: 0.5}
	perturb["faults"] = r
	for name, req := range perturb {
		if ComputeKey(req) == k0 {
			t.Errorf("changing %s did not change the key", name)
		}
	}

	// An inactive plan measures like no plan and must hash like no plan;
	// observability handles must not affect the key.
	r = base
	r.Faults = &simmpi.FaultPlan{Seed: 99, KillRank: -1} // nothing injected
	if ComputeKey(r) != k0 {
		t.Error("inactive fault plan changed the key")
	}
	r = base
	r.Metrics = obs.NewRegistry()
	if ComputeKey(r) != k0 {
		t.Error("metrics registry changed the key")
	}
	// Negative retries normalize to 0.
	a, b := base, base
	a.Retries, b.Retries = 0, -5
	if ComputeKey(a) != ComputeKey(b) {
		t.Error("negative retries did not normalize to 0")
	}
}

func TestSchedulerMemoryHitByteIdentical(t *testing.T) {
	s, err := New(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reg := obs.NewRegistry()
	req := Request{App: testApp(t), Grid: testGrid(), Metrics: reg}

	cold, err := s.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if cold.CacheHit {
		t.Fatal("first run reported a cache hit")
	}
	warm, err := s.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if !warm.CacheHit {
		t.Fatal("second run was not served from cache")
	}
	if warm.Key != cold.Key {
		t.Fatal("key changed between runs")
	}
	if !bytes.Equal(mustJSON(t, cold.Campaign), mustJSON(t, warm.Campaign)) {
		t.Error("cached campaign is not byte-identical to the fresh one")
	}
	if !bytes.Equal(mustJSON(t, cold.Report), mustJSON(t, warm.Report)) {
		t.Error("cached report is not byte-identical to the fresh one")
	}
	if st := s.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
	counters := reg.Snapshot().Counters
	if counters[MetricCacheHit] != 1 || counters[MetricCacheMiss] != 1 {
		t.Errorf("registry counters = %v, want cache_hit=1 cache_miss=1", counters)
	}
}

// The scheduler must produce exactly what a bare ResilientRunner produces:
// the shared pool and the cache layer are transparent.
func TestSchedulerMatchesBareRunner(t *testing.T) {
	plan, err := simmpi.ParseFaultSpec("drop=0.02,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	req := Request{App: testApp(t), Grid: testGrid(), Faults: plan, Retries: 3}

	direct := &workload.ResilientRunner{
		App: req.App, Faults: req.Faults, Retries: req.Retries,
	}
	wantC, wantRep, err := direct.Run(context.Background(), req.Grid)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}

	s, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	out, err := s.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("scheduled run: %v", err)
	}
	if !bytes.Equal(mustJSON(t, wantC), mustJSON(t, out.Campaign)) {
		t.Error("scheduled campaign differs from bare runner campaign")
	}
	if !bytes.Equal(mustJSON(t, wantRep), mustJSON(t, out.Report)) {
		t.Error("scheduled report differs from bare runner report")
	}
}

func TestSchedulerDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	req := Request{App: testApp(t), Grid: testGrid()}

	s1, err := New(Options{Workers: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := s1.Run(context.Background(), req)
	s1.Close()
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}

	// A fresh scheduler has an empty memory cache; the hit must come from
	// disk and still be byte-identical.
	s2, err := New(Options{Workers: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	warm, err := s2.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if !warm.CacheHit {
		t.Fatal("fresh scheduler did not hit the disk store")
	}
	if !bytes.Equal(mustJSON(t, cold.Campaign), mustJSON(t, warm.Campaign)) {
		t.Error("disk hit is not byte-identical to the fresh campaign")
	}
	if !reflect.DeepEqual(cold.Report, warm.Report) {
		t.Error("disk hit report differs from the fresh report")
	}
	if st := s2.Stats(); st.Bytes == 0 {
		t.Error("disk hit did not count cache_bytes")
	}
	// One campaign entry named after the key, plus one point entry per
	// (p, n) configuration.
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	grid := testGrid()
	want := 1 + len(grid.Procs)*len(grid.Ns)
	if len(entries) != want {
		t.Errorf("cache dir holds %d entries, want %d (1 campaign + %d points)",
			len(entries), want, want-1)
	}
	found := false
	for _, e := range entries {
		if filepath.Base(e) == cold.Key.String()+".json" {
			found = true
		}
	}
	if !found {
		t.Errorf("cache dir %v is missing the campaign entry %s.json", entries, cold.Key)
	}
}

func TestCorruptDiskEntryIsMiss(t *testing.T) {
	req := Request{App: testApp(t), Grid: testGrid()}
	key := ComputeKey(req)

	for name, garbage := range map[string][]byte{
		"truncated": []byte(`{"version":1,"key":"`),
		"empty":     nil,
		"wrongkey":  []byte(`{"version":1,"key":"deadbeef","app":"Kripke","campaign":{},"report":{}}`),
		"oldversion": []byte(`{"version":0,"key":"` + key.String() +
			`","app":"Kripke","campaign":{},"report":{}}`),
	} {
		t.Run(name, func(t *testing.T) {
			// A fresh dir per subtest: each one must exercise the
			// miss-and-remeasure path, not assembly from point entries a
			// previous subtest published.
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, key.String()+".json"), garbage, 0o644); err != nil {
				t.Fatal(err)
			}
			s, err := New(Options{Workers: 2, Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			out, err := s.Run(context.Background(), req)
			if err != nil {
				t.Fatalf("run over corrupt entry: %v", err)
			}
			if out.CacheHit {
				t.Fatal("corrupt entry was served as a hit")
			}
			// The fresh result must have overwritten the corruption.
			data, ok := s.store.Load(context.Background(), key)
			if !ok {
				t.Fatal("entry missing after remeasure")
			}
			if _, _, err := decode(key, data); err != nil {
				t.Errorf("rewritten entry does not decode: %v", err)
			}
		})
	}
}

func TestRunBatchSharedPool(t *testing.T) {
	s, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	grid := testGrid()
	var reqs []Request
	for _, name := range []string{"Kripke", "LULESH", "MILC"} {
		app, ok := apps.ByName(name)
		if !ok {
			t.Fatalf("app %s not registered", name)
		}
		reqs = append(reqs, Request{App: app, Grid: grid})
	}
	outs, errs := s.RunBatch(context.Background(), reqs)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if outs[i].Campaign.App != reqs[i].App.Name() {
			t.Errorf("request %d: campaign for %s", i, outs[i].Campaign.App)
		}
	}
	// Same batch again: every campaign must now be a hit.
	outs2, errs2 := s.RunBatch(context.Background(), reqs)
	for i := range outs2 {
		if errs2[i] != nil {
			t.Fatalf("warm request %d: %v", i, errs2[i])
		}
		if !outs2[i].CacheHit {
			t.Errorf("warm request %d missed", i)
		}
		if !bytes.Equal(mustJSON(t, outs[i].Campaign), mustJSON(t, outs2[i].Campaign)) {
			t.Errorf("warm request %d: campaign bytes differ", i)
		}
	}
}

func TestRunCancelledContext(t *testing.T) {
	s, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = s.Run(ctx, Request{App: testApp(t), Grid: testGrid()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The scheduler must remain usable after a cancelled campaign.
	out, err := s.Run(context.Background(), Request{App: testApp(t), Grid: testGrid()})
	if err != nil || out.CacheHit {
		t.Fatalf("post-cancel run: out=%+v err=%v", out, err)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	k := func(b byte) Key { var k Key; k[0] = b; return k }
	c.put(k(1), []byte("a"))
	c.put(k(2), []byte("b"))
	if _, ok := c.get(k(1)); !ok { // touch 1 → 2 becomes LRU
		t.Fatal("entry 1 missing")
	}
	c.put(k(3), []byte("c"))
	if _, ok := c.get(k(2)); ok {
		t.Error("least recently used entry survived eviction")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Error("recently used entry was evicted")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	// Updating an existing key must not grow the cache.
	c.put(k(1), []byte("a2"))
	if got, _ := c.get(k(1)); string(got) != "a2" {
		t.Errorf("update not visible: %q", got)
	}
	if c.len() != 2 {
		t.Errorf("len after update = %d, want 2", c.len())
	}
}

func TestDiskStoreAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var k Key
	k[0] = 0xab
	if err := s.Store(context.Background(), k, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if data, ok := s.Load(context.Background(), k); !ok || string(data) != "payload" {
		t.Fatalf("load = %q, %v", data, ok)
	}
	// No temp files may linger after a successful store.
	tmps, err := filepath.Glob(filepath.Join(dir, ".*tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Errorf("leftover temp files: %v", tmps)
	}
	if _, ok := s.Load(context.Background(), Key{}); ok {
		t.Error("load of absent key succeeded")
	}
}
