// Package campaign schedules measurement campaigns through one shared
// worker pool and serves repeated campaigns from a content-addressed
// cache.
//
// The paper's workflow (§IV) reruns the same small campaigns constantly —
// while tuning fault plans, regenerating report tables, or comparing model
// variants — and every rerun used to pay the full simulation cost plus a
// private worker pool per call. The Scheduler fixes both: all campaigns
// submitted to it, from any goroutine, draw on a single pool of workers
// (so concurrent campaigns interleave instead of oversubscribing), and
// each finished campaign is stored under a deterministic content hash of
// everything its bytes depend on. Because ResilientRunner is deterministic
// (seeds derive from the plan and configuration, never from scheduling), a
// key hit can be served from cache byte-identically to a fresh run.
//
// Caching is two-level: an in-memory LRU of marshaled entries, optionally
// backed by a directory of JSON files (one per key, written atomically via
// temp file + rename, loaded tolerantly — a corrupt or truncated file is a
// miss, not an error). Cache traffic is observable through the cache_hit,
// cache_miss, and cache_bytes counters of the request's obs.Registry.
package campaign

import (
	"context"
	"errors"
	"log"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"extrareq/internal/apps"
	"extrareq/internal/obs"
	"extrareq/internal/simmpi"
	"extrareq/internal/workload"
)

// ErrClosed is returned by Run and RunBatch on a Scheduler whose Close has
// been called. Long-running servers hit this during shutdown races; it is
// a typed sentinel (errors.Is) so they can map it to a clean "draining"
// response instead of crashing on a closed pool.
var ErrClosed = errors.New("campaign: scheduler is closed")

// Metric names under which cache traffic is counted in a request's
// obs.Registry. cache_bytes counts the marshaled entry sizes moved to or
// from the disk store (written on miss, read on cold hit).
const (
	MetricCacheHit   = "cache_hit"
	MetricCacheMiss  = "cache_miss"
	MetricCacheBytes = "cache_bytes"
	// MetricCachePointHit / MetricCachePointMiss count per-point cache
	// traffic on the assembly path: a campaign whose own key misses still
	// reuses every (p, n) point entry a previous campaign stored.
	MetricCachePointHit  = "cache_point_hit"
	MetricCachePointMiss = "cache_point_miss"
	// MetricCacheDiskError counts store write failures (ENOSPC, a
	// vanished directory, ...). After the first one the scheduler stops
	// writing to the store instead of failing requests; reads stay live.
	MetricCacheDiskError = "cache_disk_error"
)

// DefaultMemEntries is the in-memory LRU capacity for campaign-level
// entries when Options leaves it zero. Entries are a few KB of JSON each,
// so the default costs little.
const DefaultMemEntries = 64

// DefaultMemPoints is the in-memory LRU capacity for point-level entries
// when Options leaves it zero. Point entries are a few hundred bytes each
// and a single campaign produces |Procs|×|Ns| of them, so the default is
// sized to hold many campaigns' worth.
const DefaultMemPoints = 1024

// Request describes one campaign: which app, over which grid, under which
// fault plan and resilience budget. The observability handles ride along
// to the runner but do not participate in the cache key.
type Request struct {
	App       apps.App
	Grid      workload.Grid
	Faults    *simmpi.FaultPlan
	Retries   int
	MinPoints int
	Metrics   *obs.Registry
	Tracer    *obs.Tracer
	// Progress, when non-nil, receives per-configuration completion
	// callbacks from the runner (done so far, total). Like the
	// observability handles it does not participate in the cache key; a
	// cache hit reports the whole grid done in one call.
	Progress func(done, total int)
	// PointProgress, when non-nil, receives the running assembly split —
	// how many (p, n) configurations have been reused from the point cache
	// versus measured by this request — each time either count changes.
	// Servers mirror it into job snapshots. A campaign-entry hit reports
	// the whole grid reused in one call.
	PointProgress func(reused, measured int)
}

// Outcome is a finished campaign together with its provenance: the cache
// key it is stored under, whether it was served from cache, and how much
// of it was assembled from previously measured points.
type Outcome struct {
	Campaign *workload.Campaign
	Report   *workload.CampaignReport
	Key      Key
	// CacheHit reports that nothing was measured: the campaign was served
	// from its own cache entry, or assembled entirely from point entries.
	CacheHit bool
	// PointsReused / PointsMeasured break down the assembly path: how many
	// (p, n) configurations came from the point cache versus being
	// measured by this request. A campaign-entry hit reports the whole
	// grid as reused.
	PointsReused   int
	PointsMeasured int
}

// Options configures a Scheduler.
type Options struct {
	// Workers is the shared pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// MemEntries caps the in-memory campaign-entry LRU; <= 0 selects
	// DefaultMemEntries.
	MemEntries int
	// MemPoints caps the in-memory point-entry LRU; <= 0 selects
	// DefaultMemPoints.
	MemPoints int
	// Dir, when non-empty, enables the default on-disk store (DiskStore)
	// in that directory (created if absent). Multiple processes may share
	// one directory: the layout is one file per content-hashed key,
	// written via atomic rename, so concurrent writers shard a campaign's
	// points instead of corrupting each other.
	Dir string
	// Store, when non-nil, replaces the default DiskStore as the
	// persistent tier (Dir is then ignored). Implementations must satisfy
	// the Store contract: concurrent-safe, tolerant loads, atomic writes.
	Store Store
	// Logf receives the scheduler's rare operational warnings (currently
	// only the one emitted when store writes are disabled after a write
	// failure). nil selects log.Printf.
	Logf func(format string, args ...any)
}

// Stats is a point-in-time view of a Scheduler's cache traffic, counted
// independently of any obs.Registry so tests and CLI summaries work
// without one.
type Stats struct {
	// Hits / Misses count campaign-level entry lookups in Run.
	Hits   int64
	Misses int64
	// PointHits / PointMisses count per-point lookups on the assembly path
	// (only taken after a campaign-level miss).
	PointHits   int64
	PointMisses int64
	// Bytes is the total marshaled entry bytes moved to or from the store.
	Bytes int64
	// DiskErrors counts store write failures; the first one stops further
	// store writes for the scheduler's life (reads stay live).
	DiskErrors int64
}

// Scheduler runs campaigns through one shared worker pool with a
// two-level result cache at two granularities: whole campaigns (the fast
// path) and individual (p, n) measurement points, from which a campaign
// with a cold key is assembled, measuring only the points no previous
// campaign covered. It is safe for concurrent use; Close releases the
// pool (outstanding Run calls must have returned).
type Scheduler struct {
	pool      *pool
	mem       *lru  // campaign-level entries
	pmem      *lru  // point-level entries
	store     Store // nil without Options.Dir/Options.Store
	logf      func(format string, args ...any)
	hits      atomic.Int64
	misses    atomic.Int64
	pointHits atomic.Int64
	pointMiss atomic.Int64
	bytes     atomic.Int64
	diskErrs  atomic.Int64
	// writeDown latches after the first store write failure: further
	// writes are skipped for the scheduler's life, but reads keep serving
	// the entries that are already there — a transient ENOSPC must not
	// stop a warm cache from answering.
	writeDown atomic.Bool
}

// New builds a Scheduler and starts its worker pool.
func New(o Options) (*Scheduler, error) {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	mem := o.MemEntries
	if mem <= 0 {
		mem = DefaultMemEntries
	}
	memPoints := o.MemPoints
	if memPoints <= 0 {
		memPoints = DefaultMemPoints
	}
	logf := o.Logf
	if logf == nil {
		logf = log.Printf
	}
	s := &Scheduler{
		pool: newPool(workers),
		mem:  newLRU(mem),
		pmem: newLRU(memPoints),
		logf: logf,
	}
	switch {
	case o.Store != nil:
		s.store = o.Store
	case o.Dir != "":
		disk, err := OpenDiskStore(o.Dir)
		if err != nil {
			s.pool.close()
			return nil, err
		}
		s.store = disk
	}
	return s, nil
}

// Close stops the worker pool and waits for its workers to exit. It is
// idempotent — extra calls are no-ops — and later Run/RunBatch calls
// return ErrClosed. Run calls still in flight when Close fires finish the
// tasks the pool already accepted, then fail their remaining submissions
// with ErrClosed.
func (s *Scheduler) Close() { s.pool.close() }

// Closed reports whether Close has been called.
func (s *Scheduler) Closed() bool { return s.pool.closed() }

// Stats returns the cache traffic counted so far.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		PointHits:   s.pointHits.Load(),
		PointMisses: s.pointMiss.Load(),
		Bytes:       s.bytes.Load(),
		DiskErrors:  s.diskErrs.Load(),
	}
}

// Lookup returns the marshaled cache entry stored under key (memory first,
// then the store), without running anything. Servers use it to answer
// fetch-by-key requests; decode the bytes with Decode. The read path is
// never gated by write degradation: entries already on disk keep serving
// after an ENOSPC stopped new writes.
func (s *Scheduler) Lookup(ctx context.Context, key Key) ([]byte, bool) {
	if data, ok := s.mem.get(key); ok {
		return data, true
	}
	if s.store != nil {
		if data, ok := s.store.Load(ctx, key); ok {
			return data, true
		}
	}
	return nil, false
}

// LookupEntry returns the marshaled entry stored under key at either
// granularity — point entries first (the common case on the sharding
// path), then campaign entries, then the store. It backs the
// GET /v1/points/{key} endpoint, which must serve everything the
// scheduler persists, since peers write both kinds through one store.
func (s *Scheduler) LookupEntry(ctx context.Context, key Key) ([]byte, bool) {
	if data, ok := s.pmem.get(key); ok {
		return data, true
	}
	if data, ok := s.mem.get(key); ok {
		return data, true
	}
	if s.store != nil {
		if data, ok := s.store.Load(ctx, key); ok {
			return data, true
		}
	}
	return nil, false
}

// PutEntry validates and caches one marshaled entry under key, routing it
// to the matching memory tier and writing it through to the store. It
// backs the PUT /v1/points/{key} endpoint: peers sharding a campaign
// publish their fresh points here. Entries that do not decode under key —
// garbage bytes, a key mismatch, a stale KeyVersion — are rejected so one
// confused writer cannot poison the cache for everyone.
func (s *Scheduler) PutEntry(ctx context.Context, key Key, data []byte) error {
	kind, err := ValidateEntry(key, data)
	if err != nil {
		return err
	}
	switch kind {
	case PointEntry:
		s.pmem.put(key, data)
	case CampaignEntry:
		s.mem.put(key, data)
	}
	s.storeWrite(ctx, key, data, cacheMetrics{})
	return nil
}

// StoreStatus reports the persistence tier's health: which kind of store
// backs the scheduler, whether writes have degraded (the scheduler's own
// latch or the store's), and whether a remote circuit breaker is open.
// Serving is unaffected in every degraded state — campaigns just stop
// benefiting from the broken tier — so /readyz reports these as status,
// not failure.
func (s *Scheduler) StoreStatus() StoreStatus {
	st := StoreStatus{Kind: "memory"}
	if s.store != nil {
		st.Kind = "store"
		if r, ok := s.store.(StatusReporter); ok {
			st = r.Status()
		}
	}
	if s.writeDown.Load() {
		st.WritesDegraded = true
	}
	return st
}

// Flush forces the store's completed writes durable (fsync) and, for
// tiered stores, drains the remote write-behind queue. It is a no-op
// without a store or after writes degraded. Entries are already written
// through synchronously, so Flush is a belt — drain paths call it so a
// SIGTERM cannot race the last directory update or strand queued remote
// writes.
func (s *Scheduler) Flush(ctx context.Context) error {
	if s.store == nil || s.writeDown.Load() {
		return nil
	}
	return s.store.Sync(ctx)
}

// storeWrite persists one entry to the store unless writes have degraded.
// The first failure latches writeDown — counted once, warned once — and
// later calls are no-ops; reads are never affected. Safe for concurrent
// use (point entries are published from pool workers).
func (s *Scheduler) storeWrite(ctx context.Context, key Key, data []byte, cm cacheMetrics) {
	if s.store == nil || s.writeDown.Load() {
		return
	}
	if err := s.store.Store(ctx, key, data); err != nil {
		if s.writeDown.CompareAndSwap(false, true) {
			s.diskErrs.Add(1)
			cm.addDiskError()
			s.logf("campaign: cache store write failed, degrading to memory-only writes (reads stay live): %v", err)
		}
		return
	}
	s.bytes.Add(int64(len(data)))
	cm.addBytes(int64(len(data)))
}

// Run measures one campaign, serving it from cache when an identical one
// has been measured before, and assembling it from per-point entries when
// only parts of it have: after a campaign-level miss, every (p, n)
// configuration is looked up under its own content address
// (ComputePointKey), cached points are slotted in without running
// anything, and only the missing points are measured on the shared pool
// via ResilientRunner — so a grid that overlaps a previous campaign pays
// only for its novel points. Freshly measured points are published to the
// point cache as they complete (other processes sharing the store pick
// them up mid-campaign), and the finished campaign is stored whole under
// its campaign key as a fast path for exact reruns. Failed campaigns are
// never cached at campaign level, but their completed points are; their
// report, when the runner produced one, is returned alongside the error
// so callers can render the partial account. A store write failure
// (ENOSPC, a directory deleted under a long-lived server, ...) never
// fails the request: the scheduler counts it (Stats.DiskErrors,
// cache_disk_error), warns once through Options.Logf, and stops writing
// to the store for the rest of its life — reads keep serving the entries
// already there, and the measured outcome is served normally.
func (s *Scheduler) Run(ctx context.Context, req Request) (*Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.pool.closed() {
		return nil, ErrClosed
	}
	key := ComputeKey(req)
	cm := newCacheMetrics(req.Metrics)
	gridPoints := len(req.Grid.Procs) * len(req.Grid.Ns)

	if data, ok := s.mem.get(key); ok {
		if c, rep, err := decode(key, data); err == nil {
			s.hits.Add(1)
			cm.addHit()
			reportAllDone(req)
			return &Outcome{Campaign: c, Report: rep, Key: key, CacheHit: true,
				PointsReused: gridPoints}, nil
		}
		// An undecodable in-memory entry cannot normally happen (we only
		// store bytes we encoded); fall through and remeasure.
	}
	if s.store != nil {
		if data, ok := s.store.Load(ctx, key); ok {
			if c, rep, err := decode(key, data); err == nil {
				s.mem.put(key, data)
				s.hits.Add(1)
				s.bytes.Add(int64(len(data)))
				cm.addHit()
				cm.addBytes(int64(len(data)))
				reportAllDone(req)
				return &Outcome{Campaign: c, Report: rep, Key: key, CacheHit: true,
					PointsReused: gridPoints}, nil
			}
			// Corrupt stored entry: treat as a miss; the fresh result
			// below overwrites it atomically.
		}
	}

	s.misses.Add(1)
	cm.addMiss()
	var reused, measured atomic.Int64
	reportPoints := func() {
		if req.PointProgress != nil {
			req.PointProgress(int(reused.Load()), int(measured.Load()))
		}
	}
	r := &workload.ResilientRunner{
		App:       req.App,
		Faults:    req.Faults,
		Retries:   req.Retries,
		MinPoints: req.MinPoints,
		Metrics:   req.Metrics,
		Tracer:    req.Tracer,
		Progress:  req.Progress,
		Exec:      s.exec(ctx),
		Prefill: func(pctx context.Context, p, n int) (workload.Sample, workload.ConfigOutcome, bool) {
			sm, out, ok := s.loadPoint(pctx, req, p, n, cm)
			if ok {
				reused.Add(1)
				reportPoints()
			}
			return sm, out, ok
		},
		OnConfig: func(pctx context.Context, sm workload.Sample, out workload.ConfigOutcome) {
			measured.Add(1)
			reportPoints()
			s.publishPoint(pctx, req, sm, out, cm)
		},
	}
	c, rep, err := r.Run(ctx, req.Grid)
	outcome := &Outcome{Report: rep, Key: key,
		PointsReused: int(reused.Load()), PointsMeasured: int(measured.Load())}
	if err != nil {
		return outcome, err
	}
	outcome.Campaign = c
	// Nothing measured means the whole grid came from cache — the
	// campaign key was cold but every point was warm.
	outcome.CacheHit = outcome.PointsMeasured == 0
	data, err := encode(key, req.App.Name(), c, rep)
	if err != nil {
		// Campaigns are plain data; this cannot happen. Degrade loudly.
		return outcome, err
	}
	s.mem.put(key, data)
	s.storeWrite(ctx, key, data, cm)
	return outcome, nil
}

// loadPoint looks one (p, n) configuration up in the point cache (memory
// first, then the store). A hit decodes and validates; anything unreadable
// degrades to a miss and is re-measured.
func (s *Scheduler) loadPoint(ctx context.Context, req Request, p, n int, cm cacheMetrics) (workload.Sample, workload.ConfigOutcome, bool) {
	pk := ComputePointKey(req, p, n)
	data, ok := s.pmem.get(pk)
	fromStore := false
	if !ok && s.store != nil {
		data, ok = s.store.Load(ctx, pk)
		fromStore = ok
	}
	if ok {
		if sm, out, err := decodePoint(pk, data); err == nil {
			if fromStore {
				s.pmem.put(pk, data)
				s.bytes.Add(int64(len(data)))
				cm.addBytes(int64(len(data)))
			}
			s.pointHits.Add(1)
			cm.addPointHit()
			return sm, out, true
		}
	}
	s.pointMiss.Add(1)
	cm.addPointMiss()
	return workload.Sample{}, workload.ConfigOutcome{}, false
}

// publishPoint stores one freshly measured configuration in the point
// cache, making it reusable by later campaigns (and, through the store,
// by concurrent processes) the moment it completes. Runs on pool workers.
func (s *Scheduler) publishPoint(ctx context.Context, req Request, sm workload.Sample, out workload.ConfigOutcome, cm cacheMetrics) {
	pk := ComputePointKey(req, out.P, out.N)
	data, err := encodePoint(pk, appName(req.App), sm, out)
	if err != nil {
		return // plain data; cannot happen
	}
	s.pmem.put(pk, data)
	s.storeWrite(ctx, pk, data, cm)
}

// reportAllDone mirrors a fresh run's progress stream for a cache hit: the
// whole grid is done (and reused) in one callback.
func reportAllDone(req Request) {
	total := len(req.Grid.Procs) * len(req.Grid.Ns)
	if req.Progress != nil {
		req.Progress(total, total)
	}
	if req.PointProgress != nil {
		req.PointProgress(total, 0)
	}
}

// RunBatch runs the requests concurrently, all drawing on the scheduler's
// one pool, and returns per-request outcomes and errors (both indexed like
// reqs). Unlike errgroup-style helpers it never abandons siblings: every
// request runs to completion unless ctx is cancelled.
func (s *Scheduler) RunBatch(ctx context.Context, reqs []Request) ([]*Outcome, []error) {
	outs := make([]*Outcome, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = s.Run(ctx, reqs[i])
		}(i)
	}
	wg.Wait()
	return outs, errs
}

// exec adapts the shared pool to a single campaign's ExecFunc. Submission
// stops at context cancellation; tasks already running complete first (the
// runner's slots stay consistent), then the cause is reported.
func (s *Scheduler) exec(ctx context.Context) workload.ExecFunc {
	return func(n int, run func(i int)) error {
		var done sync.WaitGroup
		done.Add(n)
		var err error
		submitted := 0
		for i := 0; i < n; i++ {
			t := task{run: run, i: i, done: &done}
			select {
			case s.pool.tasks <- t:
				submitted++
			case <-ctx.Done():
				err = context.Cause(ctx)
			case <-s.pool.quit:
				err = ErrClosed
			}
			if err != nil {
				break
			}
		}
		for i := submitted; i < n; i++ {
			done.Done()
		}
		done.Wait()
		return err
	}
}

// cacheMetrics resolves the cache counters once per request; without a
// registry every field stays nil and the add methods are no-ops.
type cacheMetrics struct {
	hit, miss, pointHit, pointMiss, bytes, diskErr *obs.Counter
}

func newCacheMetrics(reg *obs.Registry) cacheMetrics {
	if reg == nil {
		return cacheMetrics{}
	}
	return cacheMetrics{
		hit:       reg.Counter(MetricCacheHit),
		miss:      reg.Counter(MetricCacheMiss),
		pointHit:  reg.Counter(MetricCachePointHit),
		pointMiss: reg.Counter(MetricCachePointMiss),
		bytes:     reg.Counter(MetricCacheBytes),
		diskErr:   reg.Counter(MetricCacheDiskError),
	}
}

func (m cacheMetrics) addHit() {
	if m.hit != nil {
		m.hit.Add(1)
	}
}

func (m cacheMetrics) addMiss() {
	if m.miss != nil {
		m.miss.Add(1)
	}
}

func (m cacheMetrics) addPointHit() {
	if m.pointHit != nil {
		m.pointHit.Add(1)
	}
}

func (m cacheMetrics) addPointMiss() {
	if m.pointMiss != nil {
		m.pointMiss.Add(1)
	}
}

func (m cacheMetrics) addBytes(n int64) {
	if m.bytes != nil {
		m.bytes.Add(n)
	}
}

func (m cacheMetrics) addDiskError() {
	if m.diskErr != nil {
		m.diskErr.Add(1)
	}
}

// task is one unit of pool work: slot i of some campaign's grid.
type task struct {
	run  func(i int)
	i    int
	done *sync.WaitGroup
}

// pool is the shared worker pool. It is deliberately simple: a fixed set
// of goroutines draining one unbuffered channel. Campaign goroutines block
// in exec while submitting, workers never block on campaigns, so the two
// layers cannot deadlock. Shutdown goes through a quit channel instead of
// closing tasks: submitters select on quit and fail with ErrClosed, so a
// Run racing Close degrades to an error instead of a send-on-closed-channel
// panic, and close is idempotent.
type pool struct {
	tasks chan task
	quit  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup
}

func newPool(workers int) *pool {
	p := &pool{tasks: make(chan task), quit: make(chan struct{})}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func(w int) {
			defer p.wg.Done()
			labels := pprof.Labels("pool", "campaign.Scheduler",
				"worker", strconv.Itoa(w))
			pprof.Do(context.Background(), labels, func(context.Context) {
				for {
					select {
					case <-p.quit:
						return
					case t := <-p.tasks:
						t.run(t.i)
						t.done.Done()
					}
				}
			})
		}(w)
	}
	return p
}

func (p *pool) close() {
	p.once.Do(func() { close(p.quit) })
	p.wg.Wait()
}

func (p *pool) closed() bool {
	select {
	case <-p.quit:
		return true
	default:
		return false
	}
}

// appName tolerates a nil App so ComputeKey never panics; the runner
// rejects the nil App with a proper error.
func appName(a apps.App) string {
	if a == nil {
		return ""
	}
	return a.Name()
}
