package campaign

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"extrareq/internal/obs"
	"extrareq/internal/workload"
)

// mapStore is an in-memory Store for tier tests: counts traffic, can fail
// writes, and can gate Store calls so tests control the write-behind
// worker's pace.
type mapStore struct {
	mu      sync.Mutex
	entries map[Key][]byte
	loads   int
	stores  int
	synced  int
	failPut error
	status  StoreStatus
	gate    chan struct{} // non-nil: Store blocks until the gate closes
}

func newMapStore() *mapStore { return &mapStore{entries: map[Key][]byte{}} }

func (s *mapStore) Load(_ context.Context, k Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loads++
	data, ok := s.entries[k]
	return data, ok
}

func (s *mapStore) Store(ctx context.Context, k Key, data []byte) error {
	s.mu.Lock()
	gate := s.gate
	s.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stores++
	if s.failPut != nil {
		return s.failPut
	}
	s.entries[k] = data
	return nil
}

func (s *mapStore) Sync(context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.synced++
	return nil
}

func (s *mapStore) Status() StoreStatus { return s.status }

func (s *mapStore) has(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[k]
	return ok
}

func (s *mapStore) counts() (loads, stores int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loads, s.stores
}

func TestTieredReadThroughFillsLocal(t *testing.T) {
	local, remote := newMapStore(), newMapStore()
	ts := NewTieredStore(local, remote, TieredOptions{})
	defer ts.Close()
	key, data := testPointEntry(t)
	ctx := context.Background()

	if _, ok := ts.Load(ctx, key); ok {
		t.Fatal("Load hit on two empty tiers")
	}
	remote.mu.Lock()
	remote.entries[key] = data
	remote.mu.Unlock()
	got, ok := ts.Load(ctx, key)
	if !ok || string(got) != string(data) {
		t.Fatal("Load did not read through to the remote tier")
	}
	if !local.has(key) {
		t.Fatal("remote hit was not filled into the local tier")
	}
	// Next load is served locally: remote sees no more traffic.
	rl0, _ := remote.counts()
	if _, ok := ts.Load(ctx, key); !ok {
		t.Fatal("Load miss after local fill")
	}
	if rl, _ := remote.counts(); rl != rl0 {
		t.Error("local-tier hit still consulted the remote")
	}
}

func TestTieredWriteBehindReachesRemote(t *testing.T) {
	local, remote := newMapStore(), newMapStore()
	ts := NewTieredStore(local, remote, TieredOptions{})
	defer ts.Close()
	key, data := testPointEntry(t)
	ctx := context.Background()

	if err := ts.Store(ctx, key, data); err != nil {
		t.Fatal(err)
	}
	if !local.has(key) {
		t.Fatal("Store did not write the local tier synchronously")
	}
	if err := ts.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if !remote.has(key) {
		t.Fatal("Sync returned before the write-behind queue drained")
	}
	local.mu.Lock()
	synced := local.synced
	local.mu.Unlock()
	if synced == 0 {
		t.Error("Sync did not flush the local tier")
	}
}

// Sync observes everything enqueued before it, even with the worker
// mid-write when it is called.
func TestTieredSyncDrainsBacklog(t *testing.T) {
	local, remote := newMapStore(), newMapStore()
	gate := make(chan struct{})
	remote.gate = gate
	ts := NewTieredStore(local, remote, TieredOptions{QueueDepth: 16})
	defer ts.Close()
	ctx := context.Background()

	req := Request{App: testApp(t), Grid: testGrid()}
	var keys []Key
	for _, n := range []int{64, 128, 256} {
		k := ComputePointKey(req, 2, n)
		data, err := encodePoint(k, req.App.Name(), workload.Sample{P: 2, N: n, Values: map[string]float64{"t": 1}}, workload.ConfigOutcome{})
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
		if err := ts.Store(ctx, k, data); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- ts.Sync(ctx) }()
	select {
	case <-done:
		t.Fatal("Sync returned while the write-behind worker was gated")
	case <-time.After(20 * time.Millisecond):
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !remote.has(k) {
			t.Fatalf("entry %s not on the remote after Sync", k)
		}
	}
}

// A full queue sheds remote copies instead of stalling measurement; the
// local tier still gets every write.
func TestTieredQueueFullDropsRemoteCopy(t *testing.T) {
	reg := obs.NewRegistry()
	local, remote := newMapStore(), newMapStore()
	gate := make(chan struct{})
	remote.gate = gate
	ts := NewTieredStore(local, remote, TieredOptions{QueueDepth: 1, Metrics: reg})
	defer ts.Close()
	ctx := context.Background()

	req := Request{App: testApp(t), Grid: testGrid()}
	// First write occupies the worker, second fills the queue, the rest
	// must drop. Wait until the worker holds the first write so the
	// occupancy is deterministic.
	var keys []Key
	for i, n := range []int{64, 128, 256, 512} {
		k := ComputePointKey(req, 2, n)
		data, err := encodePoint(k, req.App.Name(), workload.Sample{P: 2, N: n, Values: map[string]float64{"t": 1}}, workload.ConfigOutcome{})
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
		if err := ts.Store(ctx, k, data); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			deadline := time.Now().Add(5 * time.Second)
			for {
				if _, stores := remote.counts(); stores > 0 || len(ts.writes) == 0 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("worker never picked up the first write")
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	for _, k := range keys {
		if !local.has(k) {
			t.Fatalf("local tier missing %s; drops must shed only the remote copy", k)
		}
	}
	if got := reg.Snapshot().Counters[obs.MetricStoreRemoteDropped]; got != 2 {
		t.Errorf("%s = %d, want 2 (writes beyond worker+queue)", obs.MetricStoreRemoteDropped, got)
	}
	close(gate)
	if err := ts.Sync(ctx); err != nil {
		t.Fatal(err)
	}
}

// Local-tier write errors propagate (local durability is the Scheduler's
// latch signal); remote-tier errors never do.
func TestTieredStoreErrorPropagation(t *testing.T) {
	local, remote := newMapStore(), newMapStore()
	local.failPut = errors.New("injected: disk full")
	ts := NewTieredStore(local, remote, TieredOptions{})
	defer ts.Close()
	key, data := testPointEntry(t)
	ctx := context.Background()
	if err := ts.Store(ctx, key, data); err == nil {
		t.Fatal("local write failure not propagated")
	}

	local2, remote2 := newMapStore(), newMapStore()
	remote2.failPut = errors.New("injected: remote down")
	ts2 := NewTieredStore(local2, remote2, TieredOptions{})
	defer ts2.Close()
	if err := ts2.Store(ctx, key, data); err != nil {
		t.Fatalf("remote write failure propagated: %v", err)
	}
	if err := ts2.Sync(ctx); err != nil {
		t.Fatalf("Sync surfaced a remote write failure: %v", err)
	}
}

func TestTieredStatusMergesTiers(t *testing.T) {
	local, remote := newMapStore(), newMapStore()
	local.status = StoreStatus{Kind: "disk", WritesDegraded: true}
	remote.status = StoreStatus{Kind: "remote", BreakerOpen: true}
	ts := NewTieredStore(local, remote, TieredOptions{})
	defer ts.Close()
	st := ts.Status()
	if st.Kind != "tiered" || !st.WritesDegraded || !st.BreakerOpen || !st.Degraded() {
		t.Errorf("Status() = %+v, want tiered/writes-degraded/breaker-open", st)
	}
}

// Sync with an expired context returns promptly instead of waiting on a
// wedged remote.
func TestTieredSyncHonorsContext(t *testing.T) {
	local, remote := newMapStore(), newMapStore()
	gate := make(chan struct{})
	remote.gate = gate
	ts := NewTieredStore(local, remote, TieredOptions{})
	defer ts.Close()
	defer close(gate) // release the worker before Close waits on it
	key, data := testPointEntry(t)
	if err := ts.Store(context.Background(), key, data); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := ts.Sync(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Sync on a wedged remote: err = %v, want DeadlineExceeded", err)
	}
}

func TestTieredCloseIdempotentAndStopsWorker(t *testing.T) {
	local, remote := newMapStore(), newMapStore()
	ts := NewTieredStore(local, remote, TieredOptions{})
	ts.Close()
	ts.Close() // must not panic or deadlock
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); ts.Close() }()
	}
	wg.Wait()
	// Writes after Close still land locally; the remote copy is dropped.
	key, data := testPointEntry(t)
	if err := ts.Store(context.Background(), key, data); err != nil {
		t.Fatal(err)
	}
	if !local.has(key) {
		t.Error("Store after Close dropped the local write")
	}
	if err := ts.Sync(context.Background()); err != nil {
		t.Errorf("Sync after Close: %v", err)
	}
}

// A scheduler over a tiered store shards like one over a plain store:
// entries written through the tier are served back after a restart that
// kept only the remote tier.
func TestTieredSchedulerSurvivesLocalLoss(t *testing.T) {
	remote := newMapStore()
	local1, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts1 := NewTieredStore(local1, remote, TieredOptions{})
	s1, err := New(Options{Workers: 2, Store: ts1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	req := Request{App: testApp(t), Grid: testGrid()}
	out, err := s1.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	ts1.Close()

	// "New machine": fresh local dir, same remote.
	local2, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts2 := NewTieredStore(local2, remote, TieredOptions{})
	defer ts2.Close()
	s2, err := New(Options{Workers: 2, Store: ts2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	warm, err := s2.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("campaign was re-measured despite the remote tier holding it")
	}
	if string(mustJSON(t, warm.Report)) != string(mustJSON(t, out.Report)) {
		t.Error("report served via the remote tier is not byte-identical")
	}
}
