package campaign

import (
	"context"
	"sync"
	"time"

	"extrareq/internal/obs"
)

// TieredStore layers a fast local Store (typically a DiskStore) over a
// slower remote one:
//
//   - Load is read-through: local first; on a local miss the remote is
//     consulted and a hit is filled back into the local tier so the next
//     process restart doesn't pay the network again.
//   - Store writes the local tier synchronously — that is the durability
//     the Scheduler's write-degradation latch protects — and enqueues the
//     remote write on a bounded write-behind queue drained by one
//     background goroutine. A full queue drops the remote copy (counted
//     via store_remote_dropped) rather than stalling measurement.
//   - Sync flushes the local tier, then blocks until every remote write
//     enqueued so far has been attempted — the drain path calls this so a
//     terminating shard publishes its points before exiting.
//
// Local-tier errors propagate (they mean local durability is gone);
// remote-tier errors never do — the remote layer absorbs its own failures
// by design.
type TieredStore struct {
	local  Store
	remote Store

	writes chan tieredWrite
	quit   chan struct{}
	done   chan struct{}

	mu      sync.Mutex
	closed  bool
	metrics *obs.RemoteStore
}

// tieredWrite is one queued remote write; flush is non-nil for the
// sentinel tokens Sync threads through the queue to observe its drain.
type tieredWrite struct {
	k     Key
	data  []byte
	flush chan struct{}
}

// TieredOptions configures NewTieredStore; the zero value selects the
// defaults documented per field.
type TieredOptions struct {
	// QueueDepth bounds the remote write-behind queue; <= 0 selects
	// DefaultTieredQueueDepth. Writes beyond the bound are dropped.
	QueueDepth int
	// WriteTimeout bounds each background remote write; <= 0 selects
	// DefaultTieredWriteTimeout.
	WriteTimeout time.Duration
	// Metrics receives the store_remote_dropped counter for writes shed
	// by a full queue; nil disables it. The remote tier carries its own
	// instruments for writes that actually reach it.
	Metrics *obs.Registry
}

// Tiered store defaults.
const (
	DefaultTieredQueueDepth   = 256
	DefaultTieredWriteTimeout = 10 * time.Second
)

// NewTieredStore builds the local-over-remote tier and starts its
// write-behind worker. Close (or a final Sync then Close) releases it.
func NewTieredStore(local, remote Store, o TieredOptions) *TieredStore {
	if o.QueueDepth <= 0 {
		o.QueueDepth = DefaultTieredQueueDepth
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = DefaultTieredWriteTimeout
	}
	s := &TieredStore{
		local:   local,
		remote:  remote,
		writes:  make(chan tieredWrite, o.QueueDepth),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		metrics: obs.NewRemoteStore(o.Metrics),
	}
	go s.drain(o.WriteTimeout)
	return s
}

// Status merges the tiers: writes are degraded if the local tier says so,
// and the breaker flag surfaces from the remote tier.
func (s *TieredStore) Status() StoreStatus {
	st := StoreStatus{Kind: "tiered"}
	if r, ok := s.local.(StatusReporter); ok {
		st.WritesDegraded = r.Status().WritesDegraded
	}
	if r, ok := s.remote.(StatusReporter); ok {
		st.BreakerOpen = r.Status().BreakerOpen
	}
	return st
}

// Load reads through the tiers: local, then remote with local fill.
func (s *TieredStore) Load(ctx context.Context, k Key) ([]byte, bool) {
	if data, ok := s.local.Load(ctx, k); ok {
		return data, true
	}
	data, ok := s.remote.Load(ctx, k)
	if !ok {
		return nil, false
	}
	// Fill the local tier so the hit is free next time. A local write
	// failure is not this read's problem — the bytes are in hand.
	s.local.Store(ctx, k, data)
	return data, true
}

// Store writes the local tier synchronously and enqueues the remote copy.
// The returned error is the local tier's alone.
func (s *TieredStore) Store(ctx context.Context, k Key, data []byte) error {
	err := s.local.Store(ctx, k, data)
	s.enqueue(tieredWrite{k: k, data: data})
	return err
}

// Sync flushes the local tier, then waits for the write-behind queue to
// drain through the point it was called. Queued writes that the worker
// subsequently drops (breaker open, remote down) still count as drained —
// Sync promises an attempt, not remote durability.
func (s *TieredStore) Sync(ctx context.Context) error {
	err := s.local.Sync(ctx)
	flushed := make(chan struct{})
	if !s.enqueue(tieredWrite{flush: flushed}) {
		return err // closed or queue full: nothing more to wait for
	}
	select {
	case <-flushed:
	case <-s.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	return err
}

// Close stops the write-behind worker after it finishes the write in
// flight; queued writes behind it are discarded. Call Sync first for a
// graceful drain. Close does not close the underlying tiers — they may
// be shared — and is idempotent.
func (s *TieredStore) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.quit)
	<-s.done
}

// enqueue offers w to the write-behind queue without blocking, reporting
// whether it was accepted.
func (s *TieredStore) enqueue(w tieredWrite) bool {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		if w.flush == nil {
			s.metrics.Dropped()
		}
		return false
	}
	select {
	case s.writes <- w:
		return true
	default:
		if w.flush == nil {
			s.metrics.Dropped()
		}
		return false
	}
}

// drain is the write-behind worker: it forwards queued writes to the
// remote tier under its own deadline (the enqueuing request is long gone)
// and answers Sync's flush tokens once everything ahead of them has been
// attempted.
func (s *TieredStore) drain(writeTimeout time.Duration) {
	defer close(s.done)
	for {
		select {
		case <-s.quit:
			return
		case w := <-s.writes:
			if w.flush != nil {
				close(w.flush)
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), writeTimeout)
			s.remote.Store(ctx, w.k, w.data)
			cancel()
		}
	}
}
