package campaign

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"extrareq/internal/apps"
	"extrareq/internal/obs"
	"extrareq/internal/simmpi"
	"extrareq/internal/workload"
)

// countingApp wraps a proxy app and counts Run invocations per (p, n), so
// tests can assert which grid points were actually measured. It reports
// the wrapped app's name, so cache keys and campaign bytes are identical
// to the bare app's.
type countingApp struct {
	apps.App
	mu   sync.Mutex
	runs map[[2]int]int
}

func newCountingApp(t testing.TB) *countingApp {
	return &countingApp{App: testApp(t), runs: map[[2]int]int{}}
}

func (a *countingApp) Run(cfg apps.Config) ([]simmpi.Result, error) {
	a.mu.Lock()
	a.runs[[2]int{cfg.Procs, cfg.N}]++
	a.mu.Unlock()
	return a.App.Run(cfg)
}

// count returns the number of Run calls at (p, n).
func (a *countingApp) count(p, n int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.runs[[2]int{p, n}]
}

func TestComputePointKeySensitivity(t *testing.T) {
	app := testApp(t)
	base := Request{App: app, Grid: testGrid(), Retries: 2, MinPoints: 5}
	k0 := ComputePointKey(base, 2, 64)
	if k0 != ComputePointKey(base, 2, 64) {
		t.Fatal("same point hashed to different keys")
	}
	if ComputePointKey(base, 4, 64) == k0 || ComputePointKey(base, 2, 128) == k0 {
		t.Error("changing p or n did not change the point key")
	}

	perturb := map[string]Request{}
	r := base
	r.Grid.Seed = 8
	perturb["seed"] = r
	r = base
	r.Grid.Repeats = 3
	perturb["repeats"] = r
	r = base
	r.Retries = 3
	perturb["retries"] = r
	r = base
	r.Faults = &simmpi.FaultPlan{Seed: 1, KillRank: -1, Drop: 0.5}
	perturb["faults"] = r
	for name, req := range perturb {
		if ComputePointKey(req, 2, 64) == k0 {
			t.Errorf("changing %s did not change the point key", name)
		}
	}

	// MinPoints only shapes the report's axis warnings, never a point's
	// measurement: campaigns differing only there must share points. The
	// grid axes likewise don't matter beyond the point itself.
	r = base
	r.MinPoints = 3
	if ComputePointKey(r, 2, 64) != k0 {
		t.Error("MinPoints changed the point key; overlapping campaigns would stop sharing points")
	}
	r = base
	r.Grid.Procs = []int{2, 8}
	r.Grid.Ns = []int{64, 999}
	if ComputePointKey(r, 2, 64) != k0 {
		t.Error("unrelated grid axis values changed the point key")
	}
	r = base
	r.Metrics = obs.NewRegistry()
	if ComputePointKey(r, 2, 64) != k0 {
		t.Error("metrics registry changed the point key")
	}
	// Point keys and campaign keys must never collide (distinct domain
	// prefixes).
	if ComputePointKey(base, 2, 64) == ComputeKey(base) {
		t.Error("point key collided with campaign key")
	}
}

// The headline guarantee: a campaign whose grid overlaps a previously
// cached campaign re-measures only the non-overlapping points, and its
// outcome is byte-identical to a cold run of the same grid.
func TestOverlapReusesPoints(t *testing.T) {
	app := newCountingApp(t)
	s, err := New(Options{Workers: 4, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	gridA := workload.Grid{Procs: []int{2, 4}, Ns: []int{64, 128}, Seed: 7, Repeats: 2}
	if _, err := s.Run(context.Background(), Request{App: app, Grid: gridA}); err != nil {
		t.Fatalf("campaign A: %v", err)
	}
	runsPerPoint := gridA.Repeats // healthy runs: one attempt, Repeats runs
	for _, p := range gridA.Procs {
		for _, n := range gridA.Ns {
			if got := app.count(p, n); got != runsPerPoint {
				t.Fatalf("campaign A measured (%d,%d) %d times, want %d", p, n, got, runsPerPoint)
			}
		}
	}

	// Campaign B shares the n=128 column with A and adds n=256.
	gridB := workload.Grid{Procs: []int{2, 4}, Ns: []int{128, 256}, Seed: 7, Repeats: 2}
	reg := obs.NewRegistry()
	outB, err := s.Run(context.Background(), Request{App: app, Grid: gridB, Metrics: reg})
	if err != nil {
		t.Fatalf("campaign B: %v", err)
	}
	if outB.CacheHit {
		t.Error("partially overlapping campaign reported a full cache hit")
	}
	if outB.PointsReused != 2 || outB.PointsMeasured != 2 {
		t.Errorf("campaign B reused %d / measured %d points, want 2 / 2",
			outB.PointsReused, outB.PointsMeasured)
	}
	// The shared points were never re-executed; the novel ones ran once.
	for _, p := range gridB.Procs {
		if got := app.count(p, 128); got != runsPerPoint {
			t.Errorf("shared point (%d,128) measured %d times total, want %d (exactly once)",
				p, got, runsPerPoint)
		}
		if got := app.count(p, 256); got != runsPerPoint {
			t.Errorf("novel point (%d,256) measured %d times, want %d", p, got, runsPerPoint)
		}
	}
	counters := reg.Snapshot().Counters
	if counters[MetricCachePointHit] != 2 || counters[MetricCachePointMiss] != 2 {
		t.Errorf("point counters = hit %d / miss %d, want 2 / 2",
			counters[MetricCachePointHit], counters[MetricCachePointMiss])
	}

	// Byte-identical to a cold run of the same grid on a cacheless
	// scheduler.
	cold, err := New(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	outCold, err := cold.Run(context.Background(), Request{App: testApp(t), Grid: gridB})
	if err != nil {
		t.Fatalf("cold campaign B: %v", err)
	}
	if !bytes.Equal(mustJSON(t, outCold.Campaign), mustJSON(t, outB.Campaign)) {
		t.Error("assembled campaign is not byte-identical to the cold run")
	}
	if !bytes.Equal(mustJSON(t, outCold.Report), mustJSON(t, outB.Report)) {
		t.Error("assembled report is not byte-identical to the cold run")
	}

	// A rerun of B now hits its own campaign entry without consulting
	// points.
	again, err := s.Run(context.Background(), Request{App: app, Grid: gridB})
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.PointsMeasured != 0 {
		t.Errorf("rerun of B: CacheHit=%v PointsMeasured=%d, want campaign-level hit",
			again.CacheHit, again.PointsMeasured)
	}
}

// A grid that is a strict subset of an already measured campaign is
// assembled entirely from point entries: nothing runs, the outcome counts
// as a cache hit, and progress reports the whole grid done at once.
func TestSubsetGridAssemblesWithoutMeasuring(t *testing.T) {
	app := newCountingApp(t)
	s, err := New(Options{Workers: 4, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	gridA := workload.Grid{Procs: []int{2, 4}, Ns: []int{64, 128}, Seed: 7}
	if _, err := s.Run(context.Background(), Request{App: app, Grid: gridA}); err != nil {
		t.Fatal(err)
	}
	runsA := app.count(2, 64) + app.count(4, 64) + app.count(2, 128) + app.count(4, 128)

	var progress [][2]int
	sub := workload.Grid{Procs: []int{2}, Ns: []int{64, 128}, Seed: 7}
	out, err := s.Run(context.Background(), Request{App: app, Grid: sub,
		Progress: func(done, total int) { progress = append(progress, [2]int{done, total}) }})
	if err != nil {
		t.Fatal(err)
	}
	if !out.CacheHit {
		t.Error("fully assembled subset campaign did not count as a cache hit")
	}
	if out.PointsReused != 2 || out.PointsMeasured != 0 {
		t.Errorf("subset reused %d / measured %d, want 2 / 0", out.PointsReused, out.PointsMeasured)
	}
	if got := app.count(2, 64) + app.count(4, 64) + app.count(2, 128) + app.count(4, 128); got != runsA {
		t.Errorf("subset campaign re-executed measurements (%d runs, was %d)", got, runsA)
	}
	if len(progress) != 1 || progress[0] != [2]int{2, 2} {
		t.Errorf("progress = %v, want one (2, 2) call", progress)
	}

	// Byte-identity against a cold run of the subset grid.
	cold, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	outCold, err := cold.Run(context.Background(), Request{App: testApp(t), Grid: sub})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, outCold.Campaign), mustJSON(t, out.Campaign)) {
		t.Error("subset assembly is not byte-identical to a cold run")
	}
	if !bytes.Equal(mustJSON(t, outCold.Report), mustJSON(t, out.Report)) {
		t.Error("subset report is not byte-identical to a cold run")
	}
}

// Point reuse must respect the key ingredients: a different seed, repeat
// count, retry budget, or fault plan shares nothing.
func TestOverlapDifferentSeedSharesNothing(t *testing.T) {
	app := newCountingApp(t)
	s, err := New(Options{Workers: 4, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	grid := workload.Grid{Procs: []int{2, 4}, Ns: []int{64, 128}, Seed: 7}
	if _, err := s.Run(context.Background(), Request{App: app, Grid: grid}); err != nil {
		t.Fatal(err)
	}
	grid.Seed = 8
	out, err := s.Run(context.Background(), Request{App: app, Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	if out.PointsReused != 0 || out.PointsMeasured != 4 {
		t.Errorf("different seed reused %d / measured %d points, want 0 / 4",
			out.PointsReused, out.PointsMeasured)
	}
}

// A stale-version point entry is invalidated exactly like a stale campaign
// entry: the load degrades to a miss and the point is re-measured and
// overwritten.
func TestStalePointEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	app := newCountingApp(t)
	req := Request{App: app, Grid: workload.Grid{Procs: []int{2}, Ns: []int{64}, Seed: 7}}
	pk := ComputePointKey(req, 2, 64)
	stale := `{"version":0,"key":"` + pk.String() + `","app":"Kripke",` +
		`"sample":{"p":2,"n":64,"values":{"flops":1}},"outcome":{"p":2,"n":64,"attempts":1}}`
	if err := os.WriteFile(filepath.Join(dir, pk.String()+".json"), []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Workers: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	out, err := s.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if out.PointsReused != 0 || out.PointsMeasured != 1 {
		t.Errorf("stale point entry was reused (reused %d / measured %d)",
			out.PointsReused, out.PointsMeasured)
	}
	data, ok := s.store.Load(context.Background(), pk)
	if !ok {
		t.Fatal("point entry missing after remeasure")
	}
	if _, _, err := decodePoint(pk, data); err != nil {
		t.Errorf("rewritten point entry does not decode: %v", err)
	}
}

// Cross-process sharding (emulated by two Schedulers with disjoint memory
// sharing one store directory): overlapping grids running concurrently
// measure every shared point at most once across both processes, and the
// final reports are byte-identical to single cold runs.
func TestCrossProcessSharding(t *testing.T) {
	dir := t.TempDir()
	app1, app2 := newCountingApp(t), newCountingApp(t)
	s1, err := New(Options{Workers: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := New(Options{Workers: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	// G1 seeds the shared store. G2 and G3 then run concurrently on the
	// two schedulers; their mutual overlap (the n=64 column) is contained
	// in G1, so every shared point already has an entry and must never be
	// measured again — by either process.
	g1 := workload.Grid{Procs: []int{2, 4}, Ns: []int{64, 128}, Seed: 7}
	g2 := workload.Grid{Procs: []int{2, 4}, Ns: []int{64, 192}, Seed: 7}
	g3 := workload.Grid{Procs: []int{2, 4}, Ns: []int{64, 256}, Seed: 7}
	if _, err := s1.Run(context.Background(), Request{App: app1, Grid: g1}); err != nil {
		t.Fatal(err)
	}

	var out2, out3 *Outcome
	var err2, err3 error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		out2, err2 = s1.Run(context.Background(), Request{App: app1, Grid: g2})
	}()
	go func() {
		defer wg.Done()
		out3, err3 = s2.Run(context.Background(), Request{App: app2, Grid: g3})
	}()
	wg.Wait()
	if err2 != nil || err3 != nil {
		t.Fatalf("concurrent runs: %v / %v", err2, err3)
	}
	if out2.PointsReused != 2 || out2.PointsMeasured != 2 {
		t.Errorf("G2 reused %d / measured %d, want 2 / 2", out2.PointsReused, out2.PointsMeasured)
	}
	if out3.PointsReused != 2 || out3.PointsMeasured != 2 {
		t.Errorf("G3 reused %d / measured %d, want 2 / 2", out3.PointsReused, out3.PointsMeasured)
	}
	// Every point across both schedulers was measured at most once: the
	// n=64 column only during G1, each novel column only by its own run.
	total := func(p, n int) int { return app1.count(p, n) + app2.count(p, n) }
	for _, p := range []int{2, 4} {
		for _, n := range []int{64, 128, 192, 256} {
			if got := total(p, n); got > 1 {
				t.Errorf("point (%d,%d) measured %d times across processes, want at most 1", p, n, got)
			}
		}
		if total(p, 64) != 1 {
			t.Errorf("shared point (%d,64) measured %d times, want exactly 1 (during G1)", p, total(p, 64))
		}
	}

	// Reports byte-identical to single cold runs of the same grids.
	cold, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	for _, tc := range []struct {
		grid workload.Grid
		out  *Outcome
	}{{g2, out2}, {g3, out3}} {
		want, err := cold.Run(context.Background(), Request{App: testApp(t), Grid: tc.grid})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mustJSON(t, want.Campaign), mustJSON(t, tc.out.Campaign)) {
			t.Errorf("sharded campaign over %v differs from cold run", tc.grid.Ns)
		}
		if !bytes.Equal(mustJSON(t, want.Report), mustJSON(t, tc.out.Report)) {
			t.Errorf("sharded report over %v differs from cold run", tc.grid.Ns)
		}
	}
}

// failWriteStore wraps a Store and fails writes on demand, while reads
// keep working — the shape of a full disk.
type failWriteStore struct {
	inner Store
	fail  bool
}

func (s *failWriteStore) Load(ctx context.Context, k Key) ([]byte, bool) {
	return s.inner.Load(ctx, k)
}

func (s *failWriteStore) Store(ctx context.Context, k Key, data []byte) error {
	if s.fail {
		return errors.New("injected: no space left on device")
	}
	return s.inner.Store(ctx, k, data)
}

func (s *failWriteStore) Sync(ctx context.Context) error { return s.inner.Sync(ctx) }

// Regression test for the diskDown latch gating reads: a write failure
// must degrade writes only. Entries already on disk keep serving Lookup
// and the Run read path for the rest of the scheduler's life.
func TestWriteFailureKeepsServingDiskReads(t *testing.T) {
	dir := t.TempDir()
	req := Request{App: testApp(t), Grid: testGrid()}
	key := ComputeKey(req)

	// Populate the directory from a healthy scheduler.
	s1, err := New(Options{Workers: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := s1.Run(context.Background(), req)
	s1.Close()
	if err != nil {
		t.Fatal(err)
	}

	// A second scheduler over the same directory, writes broken.
	disk, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	fs := &failWriteStore{inner: disk, fail: true}
	var warnings int
	s2, err := New(Options{Workers: 2, Store: fs,
		Logf: func(string, ...any) { warnings++ }})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	// Trip the write-degrade latch with a distinct campaign.
	other := req
	other.Grid.Seed = 99
	if _, err := s2.Run(context.Background(), other); err != nil {
		t.Fatalf("run with failing writes: %v", err)
	}
	if st := s2.Stats(); st.DiskErrors != 1 {
		t.Fatalf("DiskErrors = %d, want 1", st.DiskErrors)
	}
	if warnings != 1 {
		t.Fatalf("warned %d times, want exactly 1", warnings)
	}

	// The latch must not gate reads: the pre-existing disk entry still
	// hits, through Lookup and through Run.
	if _, ok := s2.Lookup(context.Background(), key); !ok {
		t.Error("Lookup of a pre-existing disk entry missed after a write failure")
	}
	warm, err := s2.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Error("Run of a pre-existing disk entry re-measured after a write failure")
	}
	if !bytes.Equal(mustJSON(t, cold.Campaign), mustJSON(t, warm.Campaign)) {
		t.Error("disk hit after write degrade is not byte-identical")
	}
	// Still only the one write error — later writes are skipped silently.
	if st := s2.Stats(); st.DiskErrors != 1 {
		t.Errorf("DiskErrors after warm reads = %d, want still 1", st.DiskErrors)
	}
}

// OpenDiskStore must reap stale temp files left by crashed writers — and
// only those: entries, fresh temps (a live writer may own them), and
// unrelated files stay.
func TestOpenDiskStoreReapsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	hexKey := strings.Repeat("ab", 32)
	old := time.Now().Add(-2 * tmpReapAge)
	write := func(name string, stale bool) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		if stale {
			if err := os.Chtimes(path, old, old); err != nil {
				t.Fatal(err)
			}
		}
		return path
	}
	staleTmp := write("."+hexKey+".tmp-123456789", true)
	staleTmp2 := write("."+strings.Repeat("cd", 32)+".tmp-42", true)
	freshTmp := write("."+hexKey+".tmp-777", false)
	entry := write(hexKey+".json", true)
	unrelated := write(".notakey.tmp-1", true) // wrong stem: not ours
	dotfile := write(".gitignore", true)

	if _, err := OpenDiskStore(dir); err != nil {
		t.Fatal(err)
	}
	for _, gone := range []string{staleTmp, staleTmp2} {
		if _, err := os.Stat(gone); !os.IsNotExist(err) {
			t.Errorf("stale temp %s survived the sweep", filepath.Base(gone))
		}
	}
	for _, kept := range []string{freshTmp, entry, unrelated, dotfile} {
		if _, err := os.Stat(kept); err != nil {
			t.Errorf("sweep removed %s, which is not a stale temp", filepath.Base(kept))
		}
	}
}
